"""Process variation model."""

import pytest

from repro.faults.variation import ProcessVariationModel


def test_rejects_bad_deviation():
    with pytest.raises(ValueError):
        ProcessVariationModel(deviation=1.5)
    with pytest.raises(ValueError):
        ProcessVariationModel(deviation=-0.1)


def test_sample_centered_near_one():
    model = ProcessVariationModel(deviation=0.2, seed=1)
    sample = model.sample_gate_factors(20000)
    assert sample.mean == pytest.approx(1.0, abs=0.02)
    assert 0.0 < sample.std < 0.25


def test_factors_always_positive():
    model = ProcessVariationModel(deviation=0.2, seed=2)
    sample = model.sample_gate_factors(50000)
    assert (sample.factors > 0).all()


def test_larger_deviation_larger_spread():
    narrow = ProcessVariationModel(deviation=0.05, seed=3)
    wide = ProcessVariationModel(deviation=0.30, seed=3)
    assert (
        wide.sample_gate_factors(5000).std
        > narrow.sample_gate_factors(5000).std
    )


def test_deterministic_given_seed():
    a = ProcessVariationModel(seed=7).sample_gate_factors(100)
    b = ProcessVariationModel(seed=7).sample_gate_factors(100)
    assert (a.factors == b.factors).all()


def test_path_sigma_shrinks_with_depth():
    model = ProcessVariationModel(deviation=0.2)
    shallow = model.path_sigma_over_mu(4)
    deep = model.path_sigma_over_mu(64)
    assert deep < shallow
    assert deep == pytest.approx(shallow / 4)


def test_path_sigma_rejects_bad_depth():
    with pytest.raises(ValueError):
        ProcessVariationModel().path_sigma_over_mu(0)


def test_sample_len():
    sample = ProcessVariationModel(seed=1).sample_gate_factors(17)
    assert len(sample) == 17
