"""Voltage scaling and the mu+2sigma fault criterion."""

import random

import pytest

from repro.faults.timing import (
    StageTimingModel,
    TimingClass,
    VDD_HIGH_FAULT,
    VDD_LOW_FAULT,
    VDD_NOMINAL,
    VoltageScaling,
    expected_class,
)
from repro.faults.variation import ProcessVariationModel


@pytest.fixture
def model():
    return StageTimingModel(VoltageScaling(), ProcessVariationModel(seed=0))


class TestVoltageScaling:
    def test_nominal_slowdown_is_one(self):
        assert VoltageScaling().slowdown(VDD_NOMINAL) == pytest.approx(1.0)

    def test_lower_voltage_is_slower(self):
        scaling = VoltageScaling()
        assert scaling.slowdown(VDD_LOW_FAULT) > 1.0
        assert scaling.slowdown(VDD_HIGH_FAULT) > scaling.slowdown(VDD_LOW_FAULT)

    def test_rejects_voltage_below_threshold(self):
        with pytest.raises(ValueError):
            VoltageScaling(vth=0.35).slowdown(0.3)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            VoltageScaling(vth=-1)


class TestClassBands:
    def test_bands_are_ordered_and_disjoint(self, model):
        safe = model.class_band(TimingClass.SAFE)
        warm = model.class_band(TimingClass.WARM)
        hot = model.class_band(TimingClass.HOT)
        assert safe[0] < safe[1] <= warm[0] < warm[1] <= hot[0] < hot[1]

    def test_sampled_fraction_lands_in_band(self, model):
        rng = random.Random(1)
        for cls in TimingClass:
            lo, hi = model.class_band(cls)
            for _ in range(50):
                frac = model.sample_path_fraction(cls, rng)
                assert lo <= frac <= hi

    @pytest.mark.parametrize("cls", list(TimingClass))
    def test_sampled_fraction_classifies_back(self, model, cls):
        rng = random.Random(2)
        for _ in range(100):
            frac = model.sample_path_fraction(cls, rng)
            assert expected_class(frac, model) is cls


class TestCriterion:
    def test_hot_path_faults_at_low_fault_voltage(self, model):
        rng = random.Random(3)
        frac = model.sample_path_fraction(TimingClass.HOT, rng)
        assert model.violates(frac, VDD_LOW_FAULT)
        assert model.violates(frac, VDD_HIGH_FAULT)
        assert not model.violates(frac, VDD_NOMINAL)

    def test_warm_path_faults_only_at_high_fault_voltage(self, model):
        rng = random.Random(4)
        frac = model.sample_path_fraction(TimingClass.WARM, rng)
        assert not model.violates(frac, VDD_LOW_FAULT)
        assert model.violates(frac, VDD_HIGH_FAULT)

    def test_safe_path_never_faults(self, model):
        rng = random.Random(5)
        frac = model.sample_path_fraction(TimingClass.SAFE, rng)
        for vdd in (VDD_NOMINAL, VDD_LOW_FAULT, VDD_HIGH_FAULT):
            assert not model.violates(frac, vdd)

    def test_dynamic_noise_can_push_over(self, model):
        lo, hi = model.class_band(TimingClass.WARM)
        # just under the HOT boundary: a positive temporal excursion at
        # 1.04V can still cause an (unpredicted) violation
        frac = hi * 0.999
        assert not model.violates(frac, VDD_LOW_FAULT, dynamic_noise=0.0)
        assert model.violates(frac, VDD_LOW_FAULT, dynamic_noise=0.05)

    def test_fault_margin_sign_matches_criterion(self, model):
        rng = random.Random(6)
        for cls, vdd, faulty in (
            (TimingClass.HOT, VDD_LOW_FAULT, True),
            (TimingClass.WARM, VDD_LOW_FAULT, False),
            (TimingClass.WARM, VDD_HIGH_FAULT, True),
        ):
            frac = model.sample_path_fraction(cls, rng)
            assert (model.fault_margin(frac, vdd) > 0) is faulty
