"""Temperature-dependent fault injection (temporal variation, Section 1)."""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.sensors import ThermalModel
from repro.faults.timing import TimingClass, VDD_LOW_FAULT
from repro.isa.instruction import DynInst, StaticInst
from repro.isa.opcodes import OpClass


def _statics(n=120):
    statics = [
        StaticInst(0x1000 + 4 * i, OpClass.IALU, dest=1) for i in range(n)
    ]
    return statics, {si.pc: 1.0 / n for si in statics}


def _fault_rate(injector, statics, pcs, vdd, trials=40):
    by_pc = {si.pc: si for si in statics}
    faults = total = 0
    for pc in pcs:
        for i in range(trials):
            inst = injector.resolve(DynInst(i, by_pc[pc]), vdd)
            total += 1
            faults += bool(inst.has_fault)
    return faults / total


def _warm_pcs(injector):
    return [
        pc for pc, t in injector._pc_timing.items()
        if t.timing_class is TimingClass.WARM
    ]


def test_hot_die_faults_more_than_cold_die(timing_model):
    statics, freq = _statics()

    def rate_at(temperature):
        thermal = ThermalModel(t_ambient=40, t_max=100, step=0.0, seed=0)
        thermal.temperature = temperature
        injector = FaultInjector(
            timing_model, seed=9, thermal=thermal,
            thermal_coefficient=5e-3, background_rate=0.0,
        )
        injector.assign(statics, freq, fr_low=0.05, fr_high=0.35)
        # WARM paths sit just below the 1.04V boundary: thermal bias
        # decides whether they trip
        return _fault_rate(
            injector, statics, _warm_pcs(injector), VDD_LOW_FAULT
        )

    assert rate_at(99.0) > rate_at(41.0)


def test_no_thermal_model_means_no_bias(timing_model):
    statics, freq = _statics()
    injector = FaultInjector(timing_model, seed=9, background_rate=0.0)
    injector.assign(statics, freq, fr_low=0.05, fr_high=0.35)
    assert injector.thermal is None
    rate = _fault_rate(injector, statics, _warm_pcs(injector), VDD_LOW_FAULT)
    assert rate < 0.3  # only the Gaussian tail trips WARM paths at 1.04V


def test_thermal_bias_is_bounded(timing_model):
    thermal = ThermalModel(seed=1)
    injector = FaultInjector(timing_model, thermal=thermal)
    assert injector.thermal_coefficient == pytest.approx(5e-4)
