"""Fault injector: assignment targets and per-instance resolution."""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.timing import (
    TimingClass,
    VDD_HIGH_FAULT,
    VDD_LOW_FAULT,
    VDD_NOMINAL,
)
from repro.isa.instruction import DynInst, StaticInst
from repro.isa.opcodes import OpClass, PipeStage


def _program_statics(n=60):
    """A flat set of static instructions with a uniform frequency map."""
    statics = []
    for i in range(n):
        op = OpClass.LOAD if i % 4 == 0 else OpClass.IALU
        statics.append(
            StaticInst(0x1000 + 4 * i, op, dest=1,
                       mem_base=0x100, mem_stride=8, mem_region=64)
        )
    freq = {si.pc: 1.0 / n for si in statics}
    return statics, freq


@pytest.fixture
def injector(timing_model):
    return FaultInjector(timing_model, seed=5)


class TestAssignment:
    def test_rejects_inverted_targets(self, injector):
        statics, freq = _program_statics()
        with pytest.raises(ValueError):
            injector.assign(statics, freq, fr_low=0.1, fr_high=0.05)

    def test_dynamic_weight_near_targets(self, injector):
        statics, freq = _program_statics(200)
        freq = {si.pc: 1.0 / 200 for si in statics}
        injector.assign(statics, freq, fr_low=0.02, fr_high=0.08)
        hot = sum(
            freq[pc] for pc, t in injector._pc_timing.items()
            if t.timing_class is TimingClass.HOT
        )
        warm = sum(
            freq[pc] for pc, t in injector._pc_timing.items()
            if t.timing_class is TimingClass.WARM
        )
        assert hot == pytest.approx(0.02 / injector.repeatability, rel=0.5)
        assert warm == pytest.approx(0.06 / injector.repeatability, rel=0.5)

    def test_mem_stage_only_for_mem_ops(self, injector):
        statics, freq = _program_statics(200)
        injector.assign(statics, freq, fr_low=0.05, fr_high=0.2)
        by_pc = {si.pc: si for si in statics}
        for pc, timing in injector._pc_timing.items():
            if timing.stage is PipeStage.MEM:
                assert by_pc[pc].is_mem

    def test_assignment_for_unassigned_pc_is_none(self, injector):
        statics, freq = _program_statics()
        injector.assign(statics, freq, fr_low=0.01, fr_high=0.02)
        assert injector.assignment_for(0xDEAD) is None


class TestResolution:
    def _dyn(self, static, seq=0):
        return DynInst(seq, static)

    def test_no_faults_at_nominal_voltage(self, injector):
        statics, freq = _program_statics()
        injector.assign(statics, freq, fr_low=0.05, fr_high=0.2)
        for i, si in enumerate(statics):
            inst = injector.resolve(self._dyn(si, i), VDD_NOMINAL)
            assert not inst.has_fault

    def test_hot_pc_faults_repeatably_at_low_fault_voltage(self, injector):
        statics, freq = _program_statics(100)
        injector.assign(statics, freq, fr_low=0.2, fr_high=0.4)
        hot_pcs = {
            pc for pc, t in injector._pc_timing.items()
            if t.timing_class is TimingClass.HOT
        }
        assert hot_pcs
        by_pc = {si.pc: si for si in statics}
        faulted = 0
        trials = 0
        for pc in hot_pcs:
            for i in range(50):
                inst = injector.resolve(self._dyn(by_pc[pc], i), VDD_LOW_FAULT)
                trials += 1
                if inst.has_fault:
                    faulted += 1
        assert faulted / trials == pytest.approx(
            injector.repeatability, abs=0.08
        )

    def test_warm_pcs_rarely_fault_at_low_fault_voltage(self, injector):
        # WARM paths are below the 1.04V violation boundary; only a
        # positive temporal-noise excursion on a near-boundary path can
        # push one over, so faults must be rare (these are exactly the
        # unpredictable violations that trigger replays)
        statics, freq = _program_statics(100)
        injector.background_rate = 0.0
        injector.assign(statics, freq, fr_low=0.05, fr_high=0.3)
        warm = [
            pc for pc, t in injector._pc_timing.items()
            if t.timing_class is TimingClass.WARM
        ]
        by_pc = {si.pc: si for si in statics}
        faults = 0
        trials = 0
        for pc in warm:
            for i in range(30):
                inst = injector.resolve(self._dyn(by_pc[pc], i), VDD_LOW_FAULT)
                trials += 1
                faults += bool(inst.has_fault)
        assert trials > 0
        assert faults / trials < 0.25

    def test_replayed_instances_never_fault(self, injector):
        statics, freq = _program_statics(50)
        injector.assign(statics, freq, fr_low=0.3, fr_high=0.45)
        by_pc = {si.pc: si for si in statics}
        for pc in injector.critical_pcs:
            inst = self._dyn(by_pc[pc])
            inst.replayed = True
            injector.resolve(inst, VDD_HIGH_FAULT)
            assert not inst.has_fault

    def test_disabled_injector_is_inert(self, injector):
        statics, freq = _program_statics(50)
        injector.assign(statics, freq, fr_low=0.3, fr_high=0.45)
        injector.enabled = False
        by_pc = {si.pc: si for si in statics}
        for pc in injector.critical_pcs:
            inst = injector.resolve(self._dyn(by_pc[pc]), VDD_HIGH_FAULT)
            assert not inst.has_fault

    def test_background_rate_scales_with_voltage(self, injector):
        assert injector._background_prob(VDD_NOMINAL) == 0.0
        low = injector._background_prob(VDD_LOW_FAULT)
        high = injector._background_prob(VDD_HIGH_FAULT)
        assert 0 < low < high
        assert high == pytest.approx(injector.background_rate)
