"""Thermal model and the TEP-gating voltage sensor."""

from repro.faults.sensors import ThermalModel, VoltageSensor
from repro.faults.timing import VDD_HIGH_FAULT, VDD_LOW_FAULT, VDD_NOMINAL


class TestThermalModel:
    def test_stays_within_bounds(self):
        thermal = ThermalModel(t_ambient=40, t_max=90, step=2.0, seed=1)
        for _ in range(2000):
            t = thermal.advance()
            assert 40 <= t <= 90

    def test_advance_scales_with_cycles(self):
        a = ThermalModel(step=0.5, seed=2)
        b = ThermalModel(step=0.5, seed=2)
        a.advance(cycles=1)
        b.advance(cycles=100)
        # same seed: the 100-cycle step draws from a wider window
        assert abs(b.temperature - 62.5) >= abs(a.temperature - 62.5) * 0.999


class TestVoltageSensor:
    def test_nominal_voltage_not_favorable(self):
        assert not VoltageSensor(VDD_NOMINAL).favorable()

    def test_lowered_voltages_favorable(self):
        assert VoltageSensor(VDD_LOW_FAULT).favorable()
        assert VoltageSensor(VDD_HIGH_FAULT).favorable()

    def test_high_temperature_arms_sensor_at_nominal(self):
        thermal = ThermalModel(t_ambient=90, t_max=95, seed=0)
        thermal.temperature = 94.0
        sensor = VoltageSensor(VDD_NOMINAL, thermal=thermal, t_threshold=90)
        assert sensor.favorable()

    def test_cool_die_at_nominal_not_favorable(self):
        thermal = ThermalModel(seed=0)
        thermal.temperature = 50.0
        sensor = VoltageSensor(VDD_NOMINAL, thermal=thermal, t_threshold=90)
        assert not sensor.favorable()

    def test_custom_threshold(self):
        sensor = VoltageSensor(1.05, v_threshold=1.0)
        assert not sensor.favorable()
