"""Thermal model and the TEP-gating voltage sensor."""

from repro.faults.sensors import ThermalModel, VoltageSensor
from repro.faults.storm import FlakySensor
from repro.faults.timing import VDD_HIGH_FAULT, VDD_LOW_FAULT, VDD_NOMINAL


class TestThermalModel:
    def test_stays_within_bounds(self):
        thermal = ThermalModel(t_ambient=40, t_max=90, step=2.0, seed=1)
        for _ in range(2000):
            t = thermal.advance()
            assert 40 <= t <= 90

    def test_advance_scales_with_cycles(self):
        a = ThermalModel(step=0.5, seed=2)
        b = ThermalModel(step=0.5, seed=2)
        a.advance(cycles=1)
        b.advance(cycles=100)
        # same seed: the 100-cycle step draws from a wider window
        assert abs(b.temperature - 62.5) >= abs(a.temperature - 62.5) * 0.999


class TestVoltageSensor:
    def test_nominal_voltage_not_favorable(self):
        assert not VoltageSensor(VDD_NOMINAL).favorable()

    def test_lowered_voltages_favorable(self):
        assert VoltageSensor(VDD_LOW_FAULT).favorable()
        assert VoltageSensor(VDD_HIGH_FAULT).favorable()

    def test_high_temperature_arms_sensor_at_nominal(self):
        thermal = ThermalModel(t_ambient=90, t_max=95, seed=0)
        thermal.temperature = 94.0
        sensor = VoltageSensor(VDD_NOMINAL, thermal=thermal, t_threshold=90)
        assert sensor.favorable()

    def test_cool_die_at_nominal_not_favorable(self):
        thermal = ThermalModel(seed=0)
        thermal.temperature = 50.0
        sensor = VoltageSensor(VDD_NOMINAL, thermal=thermal, t_threshold=90)
        assert not sensor.favorable()

    def test_custom_threshold(self):
        sensor = VoltageSensor(1.05, v_threshold=1.0)
        assert not sensor.favorable()

    def test_vdd_exactly_at_threshold_is_favorable(self):
        # the comparison is inclusive: vdd <= v_threshold arms the sensor
        assert VoltageSensor(1.0, v_threshold=1.0).favorable()
        assert not VoltageSensor(1.0 + 1e-12, v_threshold=1.0).favorable()

    def test_temperature_exactly_at_threshold_is_favorable(self):
        thermal = ThermalModel(seed=0)
        thermal.temperature = 90.0
        sensor = VoltageSensor(VDD_NOMINAL, thermal=thermal, t_threshold=90)
        assert sensor.favorable()
        thermal.temperature = 89.999
        assert not sensor.favorable()

    def test_overclocked_sensor_always_favorable(self):
        # overclocking consumes the guardband even at nominal supply
        assert VoltageSensor(VDD_NOMINAL, overclocked=True).favorable()


class TestFlakySensorEdgeCases:
    def test_dropout_suppresses_a_favorable_supply(self):
        sensor = FlakySensor(
            VoltageSensor(VDD_LOW_FAULT), flap=1.0, seed=0, dropout_len=8
        )
        readings = [sensor.favorable() for _ in range(200)]
        assert not all(readings)
        assert sensor.dropouts > 0

    def test_never_arms_an_unfavorable_supply(self):
        # flapping only drops readings; it cannot invent favorable ones
        sensor = FlakySensor(
            VoltageSensor(VDD_NOMINAL), flap=0.5, seed=0, dropout_len=8
        )
        assert not any(sensor.favorable() for _ in range(500))

    def test_identical_seeds_are_deterministic(self):
        def pattern(seed):
            sensor = FlakySensor(
                VoltageSensor(VDD_LOW_FAULT), flap=0.4, seed=seed
            )
            return [sensor.favorable() for _ in range(300)]

        assert pattern(9) == pattern(9)
        assert pattern(9) != pattern(10)

    def test_delegates_unknown_attributes_to_inner(self):
        inner = VoltageSensor(VDD_LOW_FAULT)
        assert FlakySensor(inner).vdd == inner.vdd
