"""Lockstep checker: clean runs certify, corrupted runs are caught."""

import pickle

import pytest

from repro.core.schemes import SchemeKind
from repro.harness.runner import RunSpec, run_one
from repro.verify.chaos import KINDS, CorruptionHook
from repro.verify.lockstep import DivergenceError

_FAST = dict(n_instructions=1200, warmup=200)
_SCHEMES = (
    SchemeKind.FAULT_FREE, SchemeKind.ABS, SchemeKind.FFS, SchemeKind.CDS,
)


def _verified(scheme, **kw):
    spec_kw = dict(_FAST, verify=True, seed=3)
    spec_kw.update(kw)
    return run_one(RunSpec("streaming", scheme, 0.97, **spec_kw))


class TestCleanRuns:
    @pytest.mark.parametrize("scheme", _SCHEMES, ids=lambda s: s.name)
    def test_scheme_passes_lockstep(self, scheme):
        result = _verified(scheme)
        report = result.verification
        # the checker spans warmup + measurement; commit width may
        # overshoot the budget by a couple of instructions
        assert report["commits"] >= _FAST["n_instructions"] + _FAST["warmup"]
        assert report["digest"]

    def test_all_schemes_retire_identical_architectural_state(self):
        # the paper's correctness obligation: every fault-handling scheme
        # must retire the same stream as the fault-free machine
        digests = {
            _verified(scheme).verification["digest"] for scheme in _SCHEMES
        }
        assert len(digests) == 1

    def test_verification_is_deterministic(self):
        a = _verified(SchemeKind.FFS)
        b = _verified(SchemeKind.FFS)
        assert a.verification == b.verification
        assert a.stats.as_dict() == b.stats.as_dict()

    def test_unverified_run_has_no_listener_overhead(self):
        spec = RunSpec("streaming", SchemeKind.ABS, 0.97, **_FAST)
        result = run_one(spec)
        assert not hasattr(result, "verification")


class TestCorruptionCaught:
    @pytest.mark.parametrize("kind", KINDS)
    def test_kind_is_caught(self, kind):
        with pytest.raises(DivergenceError) as excinfo:
            _verified(
                SchemeKind.FFS, corruption={"kind": kind, "seq": 400}
            )
        exc = excinfo.value
        assert exc.commit_index is not None
        assert exc.field is not None
        detail = exc.detail()
        if kind in ("value_xor", "store_addr_xor"):
            # state-corrupting kinds leave divergent machine images;
            # drop/dup desync the stream before any state differs
            assert detail["golden_state"]["digest"] != (
                detail["dut_state"]["digest"]
            )
        else:
            assert exc.field == "seq"

    def test_value_xor_pinpoints_the_corrupt_field(self):
        with pytest.raises(DivergenceError) as excinfo:
            _verified(
                SchemeKind.ABS, corruption={"kind": "value_xor", "seq": 400}
            )
        exc = excinfo.value
        assert exc.field == "value"
        assert exc.expected["seq"] == exc.actual["seq"]
        assert exc.expected["value"] != exc.actual["value"]

    def test_drop_detected_at_the_next_commit(self):
        with pytest.raises(DivergenceError) as excinfo:
            _verified(
                SchemeKind.ABS, corruption={"kind": "drop", "seq": 400}
            )
        assert excinfo.value.field == "seq"

    def test_divergence_survives_pickling(self):
        with pytest.raises(DivergenceError) as excinfo:
            _verified(
                SchemeKind.ABS, corruption={"kind": "dup", "seq": 400}
            )
        clone = pickle.loads(pickle.dumps(excinfo.value))
        assert isinstance(clone, DivergenceError)
        assert clone.detail() == excinfo.value.detail()

    def test_corruption_in_spec_changes_cache_key(self):
        clean = RunSpec("streaming", SchemeKind.ABS, 0.97, **_FAST)
        hook = RunSpec(
            "streaming", SchemeKind.ABS, 0.97,
            corruption={"kind": "drop", "seq": 400}, **_FAST,
        )
        verified = RunSpec(
            "streaming", SchemeKind.ABS, 0.97, verify=True, **_FAST
        )
        assert len({clean.key(), hook.key(), verified.key()}) == 3


class TestCorruptionHook:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown corruption kind"):
            CorruptionHook("bitrot", 10)

    def test_round_trips_through_dict(self):
        hook = CorruptionHook("store_addr_xor", 25, mask=0xFF0)
        clone = CorruptionHook.from_dict(hook.to_dict())
        assert (clone.kind, clone.seq, clone.mask) == (
            hook.kind, hook.seq, hook.mask
        )

    def test_fires_exactly_once(self):
        result = None
        try:
            result = _verified(
                SchemeKind.ABS, corruption={"kind": "value_xor", "seq": 10}
            )
        except DivergenceError as exc:
            # one corruption -> the first mismatching commit is the
            # corrupted one itself, not a later echo
            assert exc.actual["seq"] >= 10
        assert result is None
