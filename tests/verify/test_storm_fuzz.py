"""Property fuzz: no storm configuration may corrupt architectural state.

Hypothesis drives the storm knobs; every generated weather pattern runs a
short window under the lockstep checker. A divergence here is a real
robustness bug (the repro bundle the failure leaves behind is the start
of the debugging session, not a flaky test). CI's ``verify-smoke`` job
runs this same property with a larger example budget.
"""

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.schemes import SchemeKind
from repro.faults.storm import StormConfig
from repro.harness.runner import RunSpec
from repro.verify.driver import run_checked

_EXAMPLES = int(os.environ.get("STORM_FUZZ_EXAMPLES", "6"))

_knobs = st.fixed_dictionaries({
    "burst_rate": st.floats(0.0, 0.5),
    "burst_len": st.integers(1, 400),
    "burst_gap": st.integers(0, 800),
    "wild_frac": st.floats(0.0, 1.0),
    "sensor_flap": st.floats(0.0, 0.5),
    "tep_drop": st.floats(0.0, 1.0),
    "tep_fabricate": st.floats(0.0, 0.1),
})


@settings(
    max_examples=_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(knobs=_knobs, seed=st.integers(1, 2**16))
def test_no_storm_corrupts_architectural_state(knobs, seed, tmp_path_factory):
    spec = RunSpec(
        "dense_alu", SchemeKind.FFS, 0.97, n_instructions=700, warmup=100,
        seed=seed, verify=True, storm=StormConfig(**knobs),
    )
    spec.repro_dir = str(tmp_path_factory.mktemp("storm-fuzz"))
    result = run_checked(spec)
    assert not getattr(result, "is_failure", False), (
        f"storm corrupted architectural state: {result!r} "
        f"(repro bundle: {getattr(result, 'bundle_path', None)})"
    )
    assert result.verification["commits"] >= 800
