"""Fault-storm stress mode: determinism, safety net, checker survival."""

import pytest

from repro.core.schemes import SchemeKind
from repro.faults.storm import (
    ChaoticTEP,
    FlakySensor,
    StormConfig,
    StormInjector,
    default_storm,
)
from repro.faults.timing import VDD_LOW_FAULT, VDD_NOMINAL
from repro.faults.sensors import VoltageSensor
from repro.harness.runner import RunSpec, run_one
from repro.isa.opcodes import OOO_STAGES, PipeStage
from tests.conftest import make_core

_FAST = dict(n_instructions=1200, warmup=200)


def _storm_spec(scheme=SchemeKind.FFS, storm=None, **kw):
    spec_kw = dict(_FAST, verify=True, seed=7, storm=storm or default_storm())
    spec_kw.update(kw)
    return RunSpec("streaming", scheme, 0.97, **spec_kw)


class TestStormConfig:
    def test_round_trips_through_dict(self):
        config = default_storm()
        clone = StormConfig.from_dict(config.to_dict())
        assert clone.canonical() == config.canonical()

    def test_rejects_degenerate_windows(self):
        with pytest.raises(ValueError):
            StormConfig(burst_len=0)
        with pytest.raises(ValueError):
            StormConfig(burst_gap=-1)

    def test_storm_is_part_of_the_spec_identity(self):
        calm = RunSpec("streaming", SchemeKind.FFS, 0.97, **_FAST)
        stormy = RunSpec(
            "streaming", SchemeKind.FFS, 0.97, storm=default_storm(), **_FAST
        )
        milder = RunSpec(
            "streaming", SchemeKind.FFS, 0.97,
            storm=StormConfig(burst_rate=0.01), **_FAST,
        )
        assert len({calm.key(), stormy.key(), milder.key()}) == 3

    def test_repro_dir_is_not_part_of_the_identity(self):
        a = RunSpec("streaming", SchemeKind.FFS, 0.97, **_FAST)
        b = RunSpec("streaming", SchemeKind.FFS, 0.97, **_FAST)
        b.repro_dir = "/somewhere/else"
        assert a.key() == b.key()


class TestStormInjector:
    def test_identical_seeds_inject_identically(self):
        config = StormConfig(burst_rate=0.5, burst_len=50, burst_gap=50)

        def faulted_stages(seed):
            core = make_core(
                injector=StormInjector(None, config, seed=seed),
                vdd=VDD_LOW_FAULT, scheme=SchemeKind.FFS,
            )
            core.run(400)
            return core.injector.storm_faults, core.injector.wild_faults

        assert faulted_stages(11) == faulted_stages(11)
        assert faulted_stages(11) != faulted_stages(12)

    def test_calm_windows_see_no_storm_faults(self):
        config = StormConfig(burst_rate=1.0, burst_len=10, burst_gap=10**9)
        injector = StormInjector(None, config, seed=3)
        core = make_core(
            injector=injector, vdd=VDD_LOW_FAULT, scheme=SchemeKind.FFS
        )
        core.run(500)
        # the burst window covers only the first 10 resolved instances
        assert 0 < injector.storm_faults <= 10

    def test_safety_net_absorbs_wild_mem_faults(self):
        # all-wild storm on an ALU-only program: MEM-stage faults land on
        # non-memory instructions, which only the safety net can catch
        config = StormConfig(
            burst_rate=1.0, burst_len=10**6, burst_gap=0, wild_frac=1.0
        )
        injector = StormInjector(None, config, seed=5)
        core = make_core(
            injector=injector, vdd=VDD_LOW_FAULT, scheme=SchemeKind.FFS
        )
        stats = core.run(600)
        assert stats.committed >= 600
        assert injector.wild_faults > 0
        assert stats.safety_net_replays > 0

    def test_delegates_to_wrapped_injector(self):
        class Base:
            enabled = True
            critical_pcs = {0x1234}

            def resolve(self, inst, vdd):
                return inst

        storm = StormInjector(Base(), StormConfig(), seed=0)
        assert storm.critical_pcs == {0x1234}


class TestFlakySensor:
    def test_flap_zero_is_a_passthrough(self):
        sensor = FlakySensor(VoltageSensor(VDD_LOW_FAULT), flap=0.0, seed=1)
        assert all(sensor.favorable() for _ in range(200))
        assert sensor.dropouts == 0

    def test_dropouts_flap_and_recover(self):
        sensor = FlakySensor(
            VoltageSensor(VDD_LOW_FAULT), flap=0.5, seed=1, dropout_len=16
        )
        readings = [sensor.favorable() for _ in range(2000)]
        assert sensor.dropouts > 0
        assert any(readings) and not all(readings)
        # dropouts are sustained windows, not single-query blips
        first_drop = readings.index(False)
        assert not any(readings[first_drop:first_drop + 16])

    def test_identical_seeds_flap_identically(self):
        def pattern(seed):
            sensor = FlakySensor(
                VoltageSensor(VDD_LOW_FAULT), flap=0.3, seed=seed
            )
            return [sensor.favorable() for _ in range(500)]

        assert pattern(4) == pattern(4)

    def test_marks_itself_dynamic(self):
        # forces the per-fetch sensor gate instead of the latched verdict
        assert FlakySensor(VoltageSensor(VDD_NOMINAL)).dynamic is True


class TestChaoticTEP:
    class _StubTEP:
        def __init__(self, prediction=None):
            self.prediction = prediction
            self.trained = []

        def predict_or_key(self, pc, ghr):
            return self.prediction, (pc, ghr)

        def train(self, *args):
            self.trained.append(args)

    def test_drop_all_suppresses_every_prediction(self):
        from repro.core.tep import TEPPrediction

        real = TEPPrediction(PipeStage.EXECUTE, False, key=(1, 2))
        chaotic = ChaoticTEP(self._StubTEP(real), drop=1.0, seed=2)
        for _ in range(50):
            prediction, key = chaotic.predict_or_key(0x10, 0)
            assert prediction is None
            assert key == (0x10, 0)
        assert chaotic.dropped == 50

    def test_fabricates_phantoms_on_misses(self):
        chaotic = ChaoticTEP(
            self._StubTEP(None), drop=0.0, fabricate=1.0, seed=2
        )
        prediction, _key = chaotic.predict_or_key(0x10, 0)
        assert prediction is not None
        assert prediction.stage in OOO_STAGES
        assert chaotic.fabricated == 1

    def test_training_passes_through(self):
        stub = self._StubTEP(None)
        chaotic = ChaoticTEP(stub, seed=0)
        chaotic.train("pc", "ghr", "outcome")
        assert stub.trained == [("pc", "ghr", "outcome")]


class TestStormUnderTheChecker:
    @pytest.mark.parametrize(
        "scheme", (SchemeKind.ABS, SchemeKind.FFS, SchemeKind.CDS),
        ids=lambda s: s.name,
    )
    def test_storm_never_corrupts_architectural_state(self, scheme):
        result = run_one(_storm_spec(scheme))
        assert result.verification["commits"] >= (
            _FAST["n_instructions"] + _FAST["warmup"]
        )
        assert result.stats.storm_faults > 0

    def test_storm_run_is_deterministic(self):
        a = run_one(_storm_spec())
        b = run_one(_storm_spec())
        assert a.verification == b.verification
        assert a.stats.as_dict() == b.stats.as_dict()

    def test_storm_digest_matches_calm_digest(self):
        # the storm perturbs timing only: same program, same retirement
        calm = run_one(
            RunSpec("streaming", SchemeKind.FFS, 0.97, verify=True,
                    seed=7, **_FAST)
        )
        stormy = run_one(_storm_spec())
        assert stormy.verification["digest"] == calm.verification["digest"]
