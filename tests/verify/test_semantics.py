"""Functional semantics: determinism, sensitivity, state digests."""

from repro.isa.instruction import DynInst, StaticInst
from repro.isa.opcodes import OpClass
from repro.verify.golden import GoldenModel
from repro.verify.semantics import ArchState, CommitRecord, execute, mix64
from tests.conftest import make_linear_program

_N_REGS = 16


def _dyn(op, seq=0, dest=1, srcs=(2, 3), pc=0x1000, mem_addr=None,
         taken=None):
    static = StaticInst(pc, op, dest=dest, srcs=srcs)
    inst = DynInst(seq, static)
    if mem_addr is not None:
        inst.mem_addr = mem_addr
    if taken is not None:
        inst.taken = taken
    return inst


class TestMix64:
    def test_deterministic(self):
        assert mix64(12345) == mix64(12345)

    def test_distinct_on_neighbours(self):
        values = {mix64(i) for i in range(1000)}
        assert len(values) == 1000

    def test_stays_64_bit(self):
        for x in (0, 1, (1 << 64) - 1, 1 << 100):
            assert 0 <= mix64(x) < (1 << 64)


class TestArchState:
    def test_initial_regs_deterministic_and_nonzero(self):
        a, b = ArchState(_N_REGS), ArchState(_N_REGS)
        assert a.regs == b.regs
        assert all(r != 0 for r in a.regs)

    def test_lazy_memory_agrees_across_machines(self):
        # a word neither machine wrote reads the same on both
        a, b = ArchState(_N_REGS), ArchState(_N_REGS)
        assert a.load(0xBEEF00) == b.load(0xBEEF00)
        assert a.mem == {}  # reads don't materialize words

    def test_store_load_round_trip_at_word_granularity(self):
        state = ArchState(_N_REGS)
        state.store(0x1004, 77)  # any byte of the 8-byte word aliases
        assert state.load(0x1000) == 77
        assert state.load(0x1007) == 77
        assert state.load(0x1008) != 77

    def test_digest_stable_and_sensitive(self):
        a, b = ArchState(_N_REGS), ArchState(_N_REGS)
        assert a.digest() == b.digest()
        b.regs[3] ^= 1
        assert a.digest() != b.digest()
        b.regs[3] ^= 1
        b.store(0x40, 1)
        assert a.digest() != b.digest()


class TestExecute:
    def test_same_instruction_same_state_same_record(self):
        a, b = ArchState(_N_REGS), ArchState(_N_REGS)
        ra = execute(a, _dyn(OpClass.IALU))
        rb = execute(b, _dyn(OpClass.IALU))
        assert ra == rb
        assert a.regs == b.regs

    def test_value_depends_on_source_registers(self):
        a, b = ArchState(_N_REGS), ArchState(_N_REGS)
        b.regs[2] ^= 1
        assert execute(a, _dyn(OpClass.IALU)).value != execute(
            b, _dyn(OpClass.IALU)
        ).value

    def test_opclass_salts_results(self):
        a, b = ArchState(_N_REGS), ArchState(_N_REGS)
        assert execute(a, _dyn(OpClass.IALU)).value != execute(
            b, _dyn(OpClass.IMUL)
        ).value

    def test_store_then_load_flows_through_memory(self):
        a, b = ArchState(_N_REGS), ArchState(_N_REGS)
        execute(a, _dyn(OpClass.STORE, dest=None, mem_addr=0x2000))
        ra = execute(a, _dyn(OpClass.LOAD, seq=1, mem_addr=0x2000))
        rb = execute(b, _dyn(OpClass.LOAD, seq=1, mem_addr=0x2000))
        # the store changed what the subsequent load computes
        assert ra.value != rb.value

    def test_branch_record_carries_outcome_only(self):
        state = ArchState(_N_REGS)
        record = execute(
            state, _dyn(OpClass.BRANCH, dest=None, taken=True)
        )
        assert record.taken is True
        assert record.value is None
        assert record.mem_addr is None

    def test_record_equality_is_fieldwise(self):
        a = CommitRecord(0, 0x1000, int(OpClass.IALU), None, None, 1, None, 5)
        b = CommitRecord(0, 0x1000, int(OpClass.IALU), None, None, 1, None, 5)
        c = CommitRecord(0, 0x1000, int(OpClass.IALU), None, None, 1, None, 6)
        assert a == b
        assert a != c


class TestGoldenModel:
    def test_same_program_seed_reproduces_stream_and_digest(self):
        program = make_linear_program()
        a = GoldenModel(program, trace_seed=9, n_arch_regs=_N_REGS)
        b = GoldenModel(program, trace_seed=9, n_arch_regs=_N_REGS)
        assert a.run(200) == b.run(200)
        assert a.state.digest() == b.state.digest()

    def test_different_seed_diverges(self):
        program = make_linear_program()
        a = GoldenModel(program, trace_seed=9, n_arch_regs=_N_REGS)
        b = GoldenModel(program, trace_seed=10, n_arch_regs=_N_REGS)
        a.run(200)
        b.run(200)
        # different trace realization -> different architectural image
        # (branch outcomes differ even over the same static blocks)
        assert a.executed == b.executed == 200
