"""Repro bundles: capture, delta-debug minimization, identical replay."""

import json
import os

import pytest

from repro.core.schemes import SchemeKind
from repro.harness.parallel import ResultCache, run_many
from repro.harness.runner import RunSpec
from repro.uarch.config import CoreConfig
from repro.verify.bundle import (
    RunFailure,
    capture_failure,
    minimize_failure,
    replay_bundle,
    spec_from_dict,
    spec_to_dict,
)
from repro.verify.driver import run_checked
from repro.verify.lockstep import DivergenceError


def _failing_spec(tmp_path, seq=120, **kw):
    spec_kw = dict(
        n_instructions=400, warmup=0, seed=5, verify=True,
        corruption={"kind": "value_xor", "seq": seq},
    )
    spec_kw.update(kw)
    spec = RunSpec("streaming", SchemeKind.ABS, 0.97, **spec_kw)
    spec.repro_dir = str(tmp_path)
    return spec


class TestSpecSerialization:
    def test_round_trip_preserves_identity(self):
        from repro.faults.storm import default_storm

        spec = RunSpec(
            "streaming", SchemeKind.FFS, 0.97, n_instructions=400,
            warmup=100, seed=5, verify=True, storm=default_storm(),
            corruption={"kind": "drop", "seq": 50},
        )
        clone = spec_from_dict(spec_to_dict(spec))
        assert clone.key() == spec.key()

    def test_plain_spec_round_trips_too(self):
        spec = RunSpec("astar", SchemeKind.EP, 1.10, n_instructions=300,
                       warmup=0, seed=2)
        assert spec_from_dict(spec_to_dict(spec)).key() == spec.key()


class TestCaptureAndReplay:
    def test_failure_is_captured_minimized_and_replayable(self, tmp_path):
        spec = _failing_spec(tmp_path)
        failure = run_checked(spec)
        assert isinstance(failure, RunFailure)
        assert failure.is_failure
        assert failure.kind == "divergence"
        assert failure.detail["field"] == "value"
        assert os.path.exists(failure.bundle_path)

        bundle = json.loads(open(failure.bundle_path).read())
        assert bundle["format"] == 1
        minimized = bundle["minimized"]["spec"]
        # delta-debug shrank the window down to the corrupted commit
        # (commit-width overshoot lets the window end a few short of it)
        assert 110 <= minimized["n_instructions"] <= 130
        assert bundle["trials"], "minimization probes must be journaled"

        report = replay_bundle(failure.bundle_path)
        assert report["reproduced"] is True
        assert report["identical"] is True

    def test_full_replay_reproduces_the_original_spec(self, tmp_path):
        failure = run_checked(_failing_spec(tmp_path))
        report = replay_bundle(failure.bundle_path, minimized=False)
        assert report["reproduced"] is True
        assert report["identical"] is True
        assert report["spec"]["n_instructions"] == 400

    def test_minimization_drops_unneeded_warmup(self, tmp_path):
        spec = _failing_spec(tmp_path, warmup=200)
        failure = run_checked(spec)
        bundle = json.loads(open(failure.bundle_path).read())
        assert bundle["minimized"]["spec"]["warmup"] == 0

    def test_custom_config_skips_minimization(self, tmp_path):
        spec = _failing_spec(tmp_path, config=CoreConfig.core2())
        exc = DivergenceError("synthetic", field="value", commit_index=3)
        failure = capture_failure(spec, exc, repro_dir=str(tmp_path))
        bundle = json.loads(open(failure.bundle_path).read())
        assert bundle["trials"] == []
        assert bundle["minimized"]["spec"] == bundle["spec"]

    def test_capture_never_masks_the_failure(self, tmp_path, monkeypatch,
                                             capsys):
        monkeypatch.setattr(
            "repro.verify.bundle.write_bundle",
            lambda *a, **kw: (_ for _ in ()).throw(OSError("disk full")),
        )
        exc = DivergenceError("synthetic", field="value", commit_index=3)
        spec = _failing_spec(tmp_path, config=CoreConfig.core2())
        failure = capture_failure(spec, exc, repro_dir=str(tmp_path))
        assert failure.is_failure
        assert failure.bundle_path is None
        assert "bundle capture failed" in capsys.readouterr().err

    def test_minimize_certifies_the_signature_it_returns(self, tmp_path):
        spec = _failing_spec(tmp_path)
        min_spec, sig, trials = minimize_failure(
            spec, "divergence", detail={"commit_index": 120},
        )
        assert sig is not None and sig[0] == "divergence"
        assert min_spec.n_instructions <= spec.n_instructions
        assert any(t["reproduced"] for t in trials)


class TestBatchIntegration:
    def test_run_many_returns_failures_in_place(self, tmp_path):
        bad = _failing_spec(tmp_path)
        good = RunSpec("streaming", SchemeKind.ABS, 0.97,
                       n_instructions=400, warmup=0, seed=5, verify=True)
        results = run_many([bad, good])
        assert getattr(results[0], "is_failure", False)
        assert not getattr(results[1], "is_failure", False)
        assert results[1].verification["commits"] >= 400

    def test_failures_are_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = _failing_spec(tmp_path)
        result = run_many([spec], cache=cache)[0]
        assert result.is_failure
        assert cache.load(spec) is None


class TestVerifyCli:
    def test_lockstep_verb_reports_clean_grid(self, capsys):
        from repro.harness.cli import main

        rc = main([
            "verify", "lockstep", "--benchmarks", "streaming",
            "--schemes", "ABS", "--vdds", "0.97",
            "--instructions", "600", "--warmup", "100",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1/1 runs clean" in out

    def test_storm_verb_overrides_knobs(self, capsys, tmp_path):
        from repro.harness.cli import main

        rc = main([
            "verify", "storm", "--benchmarks", "streaming",
            "--schemes", "FFS", "--vdds", "0.97",
            "--instructions", "600", "--warmup", "100",
            "--burst-rate", "0.2", "--bundle-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "storm_faults=" in out

    def test_replay_bundle_verb_round_trips(self, tmp_path, capsys):
        from repro.harness.cli import main

        failure = run_checked(_failing_spec(tmp_path))
        rc = main(["verify", "replay-bundle", failure.bundle_path])
        assert rc == 0
        assert "byte-identically" in capsys.readouterr().out

    def test_replay_bundle_verb_rejects_missing_file(self, tmp_path, capsys):
        from repro.harness.cli import main

        rc = main([
            "verify", "replay-bundle", str(tmp_path / "nope.json")
        ])
        assert rc == 2
        assert "cannot replay" in capsys.readouterr().err

    def test_unknown_scheme_is_rejected(self, capsys):
        from repro.harness.cli import main

        rc = main([
            "verify", "lockstep", "--benchmarks", "streaming",
            "--schemes", "WARP",
        ])
        assert rc != 0
