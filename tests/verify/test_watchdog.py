"""Deadlock/livelock watchdog: typed hang errors with occupancy dumps."""

import json
import pickle

import pytest

from repro.isa.instruction import StaticInst
from repro.isa.opcodes import OpClass
from repro.isa.program import BasicBlock, Program
from repro.uarch.pipeline import DeadlockError, SimulationHangError
from repro.uarch.regfile import INFINITE
from tests.conftest import make_core


class _FrozenScoreboard(list):
    """A ready-cycle scoreboard that silently loses every broadcast."""

    def __setitem__(self, index, value):
        pass


def _serial_chain_program(n=6):
    """Each instruction reads the register the previous one wrote."""
    insts = [
        StaticInst(0x1000 + 4 * i, OpClass.IALU, dest=1, srcs=(1,))
        for i in range(n - 1)
    ]
    insts.append(
        StaticInst(0x1000 + 4 * (n - 1), OpClass.BRANCH, srcs=(),
                   taken_prob=0.0)
    )
    return Program([BasicBlock(0, insts, [(0, 1.0)])], name="chain")


def _wedged_core():
    """Construct a wakeup deadlock: no producer broadcast ever lands.

    The program is a serial dependency chain; the scoreboard swallows
    every ``set_ready``/wakeup write, so dependents sleep in the IQ
    forever and the ROB head never completes — the canonical lost-wakeup
    bug shape the commit watchdog exists to catch.
    """
    core = make_core(program=_serial_chain_program())
    core.rename.ready_cycle = _FrozenScoreboard(
        [INFINITE] * core.config.n_phys_regs
    )
    return core


class TestCommitWatchdog:
    def test_wakeup_deadlock_raises_typed_hang(self):
        with pytest.raises(SimulationHangError) as excinfo:
            _wedged_core().run(100, hang_cycles=3000)
        exc = excinfo.value
        assert exc.committed == 0
        assert exc.target == 100
        assert exc.stalled_cycles >= 3000
        # the sleepers are visible in the occupancy dump
        occupancy = exc.occupancy
        assert occupancy["iq"] > 0
        assert occupancy["rob"] > 0
        assert "lsq" in occupancy and "fus_busy" in occupancy

    def test_hang_is_a_deadlock_error(self):
        # existing callers catching DeadlockError keep working
        with pytest.raises(DeadlockError):
            _wedged_core().run(100, hang_cycles=3000)

    def test_detail_is_json_safe(self):
        with pytest.raises(SimulationHangError) as excinfo:
            _wedged_core().run(100, hang_cycles=3000)
        detail = excinfo.value.detail()
        assert json.loads(json.dumps(detail)) == detail
        assert "no commit" in detail["message"]

    def test_hang_survives_pickling(self):
        # multiprocessing workers must deliver the structured fields
        with pytest.raises(SimulationHangError) as excinfo:
            _wedged_core().run(100, hang_cycles=3000)
        clone = pickle.loads(pickle.dumps(excinfo.value))
        assert isinstance(clone, SimulationHangError)
        assert clone.detail() == excinfo.value.detail()

    def test_healthy_run_never_trips_the_watchdog(self):
        core = make_core()
        stats = core.run(500, hang_cycles=2048)
        assert stats.committed >= 500

    def test_serial_chain_commits_without_the_wedge(self):
        # the deadlock above is the wedge's fault, not the program's
        core = make_core(program=_serial_chain_program())
        assert core.run(100).committed >= 100


class TestCycleBudgetBackstop:
    def test_exhausted_budget_raises_with_occupancy(self):
        core = make_core()
        with pytest.raises(SimulationHangError) as excinfo:
            core.run(10_000_000, max_cycles=200)
        exc = excinfo.value
        assert exc.cycle >= 200
        assert "cycle budget" in str(exc)
        assert exc.occupancy["cycle"] == exc.cycle
