"""Shared fleet-test fixtures: a self-signed TLS identity."""

import subprocess

import pytest


@pytest.fixture(scope="session")
def tls_identity(tmp_path_factory):
    """``(cert_path, key_path)`` — a throwaway self-signed localhost cert.

    Self-signed means the certificate is its own CA: workers pin it
    directly via ``--tls-ca``, exactly the deployment the docs describe.
    Generated once per session; skips (not fails) without an ``openssl``
    binary so the plain-TCP fleet tests still run everywhere.
    """
    directory = tmp_path_factory.mktemp("tls")
    cert = directory / "cert.pem"
    key = directory / "key.pem"
    try:
        subprocess.run(
            [
                "openssl", "req", "-x509", "-newkey", "rsa:2048",
                "-keyout", str(key), "-out", str(cert), "-days", "1",
                "-nodes", "-subj", "/CN=127.0.0.1",
                "-addext", "subjectAltName=IP:127.0.0.1",
            ],
            check=True, capture_output=True, timeout=60,
        )
    except (OSError, subprocess.SubprocessError):
        pytest.skip("openssl unavailable; cannot mint a test certificate")
    return str(cert), str(key)
