"""Handshake matrix: shared-secret and TLS combinations, end to end.

Every rejected cell must reject *cleanly*: a structured error (or a
fast connection failure) on the worker side, an audit counter on the
coordinator side, zero journal writes, and a serve loop that keeps
accepting properly-credentialed workers afterwards.
"""

import asyncio
import os

from repro.campaign.executor import run_campaign
from repro.campaign.plan import CampaignSpec
from repro.fleet import FleetWorker, fleet_run
from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.merge import shard_dir
from repro.fleet.service import reap_workers, spawn_worker


def _spec(**overrides):
    knobs = dict(
        name="fleet-handshake", benchmarks=["astar"], schemes=["EP"],
        vdds=[0.97], n_instructions=500, warmup=250, min_seeds=2,
        max_seeds=2, batch_size=2,
    )
    knobs.update(overrides)
    return CampaignSpec(**knobs)


def _single_pool(directory, **overrides):
    return run_campaign(
        str(directory), spec=_spec(**overrides), cache=False,
        snapshots=False,
    )


def _no_worker_shards(directory):
    """True when no worker ever got a journal write (shards are lazy)."""
    shards = shard_dir(directory)
    if not os.path.isdir(shards):
        return True
    return all(
        name.startswith("_") for name in os.listdir(shards)
    )


async def _serve(directory, **kwargs):
    """A serving coordinator + its task; caller cancels or awaits."""
    coordinator = FleetCoordinator(
        directory, spec=_spec(), linger=0.1, cache=False,
        snapshots=False, wait_delay=0.1, **kwargs
    )
    task = asyncio.create_task(coordinator.serve())
    await coordinator.ready.wait()
    return coordinator, task


async def _await_audit(coordinator, key, n=1, timeout=5.0):
    """Wait for an audit counter: the worker's exit can beat the
    coordinator's observation of the dropped connection by a tick."""
    loop = asyncio.get_event_loop()
    deadline = loop.time() + timeout
    while coordinator.audit[key] < n and loop.time() < deadline:
        await asyncio.sleep(0.02)


async def _cancel(task):
    task.cancel()
    try:
        await task
    except asyncio.CancelledError:
        pass


def _worker(coordinator, **kwargs):
    kwargs.setdefault("cache", False)
    kwargs.setdefault("snapshots", False)
    kwargs.setdefault("reconnect_attempts", 1)
    kwargs.setdefault("reconnect_delay", 0.05)
    return FleetWorker(
        coordinator.host, coordinator.port, **kwargs
    )


class TestSecretMatrix:
    def test_both_sides_share_secret_byte_identical(self, tmp_path):
        _single_pool(tmp_path / "pool")
        fleet_run(
            tmp_path / "fleet", spec=_spec(), workers=2, cache=False,
            snapshots=False, linger=0.2, secret="hunter2",
        )
        assert (tmp_path / "fleet" / "journal.jsonl").read_bytes() == (
            tmp_path / "pool" / "journal.jsonl"
        ).read_bytes()
        assert (tmp_path / "fleet" / "report.json").read_bytes() == (
            tmp_path / "pool" / "report.json"
        ).read_bytes()

    def test_wrong_secret_rejected_before_any_lease(self, tmp_path):
        async def go():
            coordinator, task = await _serve(tmp_path, secret="right")
            code = await _worker(
                coordinator, name="intruder", secret="wrong"
            ).run()
            await _await_audit(coordinator, "auth_failures")
            audit = dict(coordinator.audit)
            # the serve loop survived the rejection: a worker holding
            # the right secret still completes the whole campaign
            proc = spawn_worker(
                coordinator.host, coordinator.port, "honest",
                secret="right", cache=False, snapshots=False,
            )
            report = await task
            reap_workers([proc])
            return code, audit, report

        code, audit, report = asyncio.run(go())
        assert code == 2  # rejected, not retried
        # mutual auth: the worker refused the coordinator's wrong-secret
        # proof and hung up; the abandoned handshake is still audited
        assert audit["auth_failures"] == 1
        assert report["complete"]
        ledger = (tmp_path / "leases.jsonl").read_text()
        assert '"intruder"' not in ledger  # never leased a single draw
        assert not os.path.exists(
            os.path.join(shard_dir(tmp_path), "intruder.jsonl")
        )

    def test_worker_without_secret_rejected(self, tmp_path):
        async def go():
            coordinator, task = await _serve(tmp_path, secret="right")
            code = await _worker(coordinator, name="naked").run()
            await _await_audit(coordinator, "auth_failures")
            audit = dict(coordinator.audit)
            await _cancel(task)
            return code, audit

        code, audit = asyncio.run(go())
        assert code == 2
        # it could not answer the challenge; the timeout/garbage path
        # still lands in the auth-failure audit trail
        assert audit["auth_failures"] == 1
        assert _no_worker_shards(tmp_path)

    def test_forged_auth_reply_rejected_with_structured_error(
        self, tmp_path
    ):
        from repro.fleet.protocol import read_message, send_message

        async def go():
            from repro.harness.parallel import model_version

            coordinator, task = await _serve(tmp_path, secret="right")
            # an attacker that skips proof verification and answers the
            # challenge with a guessed MAC — the coordinator-side reject
            reader, writer = await asyncio.open_connection(
                coordinator.host, coordinator.port
            )
            await send_message(writer, {
                "type": "hello", "worker": "forger",
                "model_version": model_version(), "nonce": "ab" * 16,
            })
            challenge = await read_message(reader)
            await send_message(writer, {"type": "auth", "mac": "f" * 64})
            error = await read_message(reader)
            audit = dict(coordinator.audit)
            writer.close()
            await _cancel(task)
            return challenge, error, audit

        challenge, error, audit = asyncio.run(go())
        assert challenge["type"] == "challenge"
        assert error["type"] == "error"
        assert error["code"] == "auth-failed"
        assert audit["auth_failures"] == 1
        assert audit["rejected_hellos"] == 1
        assert _no_worker_shards(tmp_path)
        # the rejection never granted a lease, but it IS persisted to
        # the ledger's audit trail so an offline `fleet status` can
        # still report the hostile peer after the coordinator dies
        from repro.fleet.ledger import LeaseLedger

        replayed = LeaseLedger(tmp_path).replay()
        assert replayed["max_lease"] == 0 and replayed["open"] == {}
        assert replayed["audit"]["auth_failures"] == 1
        assert replayed["audit"]["rejected_hellos"] == 1

    def test_worker_refuses_unauthenticated_coordinator(self, tmp_path):
        async def go():
            coordinator, task = await _serve(tmp_path)  # no secret
            code = await _worker(
                coordinator, name="cautious", secret="hunter2"
            ).run()
            await _cancel(task)
            return code

        # an impostor coordinator that sends no challenge must not be
        # able to farm work out of a secret-holding worker
        assert asyncio.run(go()) == 2
        assert _no_worker_shards(tmp_path)


class TestTlsMatrix:
    def test_tls_both_sides_byte_identical(self, tmp_path, tls_identity):
        cert, key = tls_identity
        _single_pool(tmp_path / "pool")
        fleet_run(
            tmp_path / "fleet", spec=_spec(), workers=2, cache=False,
            snapshots=False, linger=0.2, secret="hunter2",
            tls_cert=cert, tls_key=key,
        )
        assert (tmp_path / "fleet" / "journal.jsonl").read_bytes() == (
            tmp_path / "pool" / "journal.jsonl"
        ).read_bytes()

    def test_plain_worker_against_tls_coordinator(
        self, tmp_path, tls_identity
    ):
        cert, key = tls_identity

        async def go():
            coordinator, task = await _serve(
                tmp_path, tls_cert=cert, tls_key=key
            )
            code = await _worker(coordinator, name="plain").run()
            await _cancel(task)
            return code

        # the TLS server never answers a plaintext hello; the worker
        # burns its reconnect budget and gives up — exit 1, no journal
        assert asyncio.run(go()) == 1
        assert _no_worker_shards(tmp_path)

    def test_tls_worker_against_plain_coordinator(self, tmp_path,
                                                  tls_identity):
        cert, _ = tls_identity

        async def go():
            coordinator, task = await _serve(tmp_path)
            code = await _worker(
                coordinator, name="armored", tls_ca=cert
            ).run()
            audit = dict(coordinator.audit)
            await _cancel(task)
            return code, audit

        code, audit = asyncio.run(go())
        assert code == 1
        # the ClientHello bytes are not a protocol frame; the plain
        # coordinator drops that connection and audits it, nothing more
        assert audit["protocol_errors"] >= 1
        assert _no_worker_shards(tmp_path)

    def test_version_skew_rejected_over_tls(self, tmp_path, tls_identity,
                                            monkeypatch):
        cert, key = tls_identity

        async def go():
            coordinator, task = await _serve(
                tmp_path, secret="s", tls_cert=cert, tls_key=key
            )
            import repro.harness.parallel as parallel

            monkeypatch.setattr(
                parallel, "model_version", lambda: "skewed-version"
            )
            code = await _worker(
                coordinator, name="stale", secret="s", tls_ca=cert
            ).run()
            audit = dict(coordinator.audit)
            await _cancel(task)
            return code, audit

        code, audit = asyncio.run(go())
        assert code == 2
        assert audit["rejected_hellos"] == 1
        # skew is counted on its own, distinct from hostile rejections
        assert audit["rejected_versions"] == 1
        assert audit["auth_failures"] == 0  # the secret was right
        assert _no_worker_shards(tmp_path)
        # and the counters survive the coordinator via the ledger
        from repro.fleet.ledger import LeaseLedger

        persisted = LeaseLedger(tmp_path).replay()["audit"]
        assert persisted["rejected_versions"] == 1
