"""The `fleet` CLI subcommand: argument validation and status verbs."""

import json

from repro.campaign.journal import Journal, write_manifest
from repro.campaign.plan import CampaignSpec
from repro.fleet.merge import shard_dir
from repro.harness.cli import main

_FAST = [
    "--instructions", "500", "--warmup", "250",
    "--seeds-min", "2", "--seeds-max", "2", "--batch", "2",
]


def _err(capsys):
    return capsys.readouterr().err


class TestValidation:
    def test_rejects_zero_workers(self, tmp_path, capsys):
        code = main(["fleet", "run", "--dir", str(tmp_path),
                     "--workers", "0"] + _FAST)
        assert code == 2
        assert "--workers must be >= 1" in _err(capsys)

    def test_rejects_out_of_range_port(self, tmp_path, capsys):
        code = main(["fleet", "serve", "--dir", str(tmp_path),
                     "--port", "99999"] + _FAST)
        assert code == 2
        assert "--port must be" in _err(capsys)

    def test_rejects_empty_host(self, tmp_path, capsys):
        code = main(["fleet", "run", "--dir", str(tmp_path),
                     "--host", "  "] + _FAST)
        assert code == 2
        assert "--host must be" in _err(capsys)

    def test_rejects_malformed_connect(self, capsys):
        code = main(["fleet", "worker", "--connect", "nonsense"])
        assert code == 2
        assert "HOST:PORT" in _err(capsys)

    def test_rejects_connect_port_zero(self, capsys):
        code = main(["fleet", "worker", "--connect", "127.0.0.1:0"])
        assert code == 2
        assert "1..65535" in _err(capsys)

    def test_rejects_bad_worker_name(self, capsys):
        code = main(["fleet", "worker", "--connect", "127.0.0.1:4242",
                     "--name", "../evil"])
        assert code == 2
        assert "invalid worker name" in _err(capsys)

    def test_worker_needs_an_endpoint(self, capsys):
        code = main(["fleet", "worker"])
        assert code == 2
        assert "--connect" in _err(capsys)

    def test_rejects_unknown_benchmark(self, tmp_path, capsys):
        code = main(["fleet", "run", "--dir", str(tmp_path),
                     "--benchmarks", "nosuch"] + _FAST)
        assert code == 2
        assert "unknown benchmark" in _err(capsys)

    def test_rejects_negative_telemetry_interval(self, tmp_path, capsys):
        code = main(["fleet", "run", "--dir", str(tmp_path),
                     "--telemetry-interval", "-5"] + _FAST)
        assert code == 2
        assert "--telemetry-interval must be >= 0" in _err(capsys)

    def test_campaign_rejects_negative_telemetry_interval(
        self, tmp_path, capsys
    ):
        code = main(["campaign", "run", "--dir", str(tmp_path),
                     "--telemetry-interval", "-1"] + _FAST)
        assert code == 2
        assert "--telemetry-interval must be >= 0" in _err(capsys)

    def test_resume_without_manifest(self, tmp_path, capsys):
        code = main(["fleet", "run", "--dir", str(tmp_path / "nope"),
                     "--resume"])
        assert code == 2
        assert "no campaign manifest" in _err(capsys)

    def test_rejects_unreadable_secret_file(self, tmp_path, capsys):
        code = main(["fleet", "run", "--dir", str(tmp_path),
                     "--secret-file", str(tmp_path / "nope")] + _FAST)
        assert code == 2
        assert "cannot read --secret-file" in _err(capsys)

    def test_rejects_both_secret_sources(self, tmp_path, capsys):
        secret = tmp_path / "secret"
        secret.write_text("s")
        code = main(["fleet", "serve", "--dir", str(tmp_path),
                     "--secret", "s", "--secret-file", str(secret)]
                    + _FAST)
        assert code == 2
        assert "not both" in _err(capsys)

    def test_rejects_cert_without_key(self, tmp_path, capsys):
        cert = tmp_path / "cert.pem"
        cert.write_text("x")
        code = main(["fleet", "serve", "--dir", str(tmp_path),
                     "--tls-cert", str(cert)] + _FAST)
        assert code == 2
        assert "--tls-key" in _err(capsys)

    def test_worker_rejects_key_without_cert(self, tmp_path, capsys):
        key = tmp_path / "key.pem"
        key.write_text("x")
        code = main(["fleet", "worker", "--connect", "127.0.0.1:4242",
                     "--tls-key", str(key)])
        assert code == 2
        assert "--tls-cert" in _err(capsys)

    def test_rejects_min_workers_above_max(self, tmp_path, capsys):
        code = main(["fleet", "run", "--dir", str(tmp_path),
                     "--min-workers", "3", "--max-workers", "2"] + _FAST)
        assert code == 2
        assert "--min-workers (3) must be <= --max-workers (2)" in (
            _err(capsys)
        )

    def test_rejects_nonpositive_min_workers(self, tmp_path, capsys):
        code = main(["fleet", "run", "--dir", str(tmp_path),
                     "--min-workers", "0", "--max-workers", "2"] + _FAST)
        assert code == 2
        assert "--min-workers must be >= 1" in _err(capsys)


def _sharded_campaign(directory):
    spec = CampaignSpec(
        name="cli-fleet", benchmarks=["astar"], schemes=["EP"],
        n_instructions=500, warmup=250, min_seeds=2, max_seeds=2,
        batch_size=2,
    )
    write_manifest(directory, spec)
    point = spec.points()[0].id
    journal = Journal(shard_dir(directory), "w0.jsonl")
    with journal:
        journal.append({
            "event": "run", "point": point, "index": 0, "seed": 1,
            "metrics": {"perf_overhead": 0.1, "ed_overhead": 0.2,
                        "ipc": 1.0, "fault_rate": 0.0,
                        "replay_rate": 0.0},
            "counts": {"faults": 0, "replays": 0, "committed": 500},
        })
    return spec


class TestStatus:
    def test_offline_status_from_shards(self, tmp_path, capsys):
        _sharded_campaign(tmp_path)
        assert main(["fleet", "status", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0/1 points done" in out
        assert "sampling" in out

    def test_offline_status_json(self, tmp_path, capsys):
        _sharded_campaign(tmp_path)
        assert main(
            ["fleet", "status", "--dir", str(tmp_path), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs_total"] == 1

    def test_offline_status_json_carries_audit_counters(
        self, tmp_path, capsys
    ):
        """Persisted security audit counters ride `fleet status --json`."""
        from repro.fleet.ledger import LeaseLedger

        _sharded_campaign(tmp_path)
        LeaseLedger(tmp_path).audited({
            "auth_failures": 3, "rejected_hellos": 4,
            "rejected_versions": 1, "protocol_errors": 2, "steals": 0,
        })
        assert main(
            ["fleet", "status", "--dir", str(tmp_path), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["audit"]["auth_failures"] == 3
        assert payload["audit"]["rejected_versions"] == 1

    def test_offline_status_text_renders_audit(self, tmp_path, capsys):
        from repro.fleet.ledger import LeaseLedger

        _sharded_campaign(tmp_path)
        LeaseLedger(tmp_path).audited({"auth_failures": 3})
        assert main(["fleet", "status", "--dir", str(tmp_path)]) == 0
        assert "audit: auth_failures=3" in capsys.readouterr().out

    def test_offline_status_audit_none_without_ledger_records(
        self, tmp_path, capsys
    ):
        _sharded_campaign(tmp_path)
        assert main(
            ["fleet", "status", "--dir", str(tmp_path), "--json"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["audit"] is None

    def test_status_needs_dir_or_connect(self, capsys):
        assert main(["fleet", "status"]) == 2
        assert "--connect" in _err(capsys)

    def test_status_without_manifest(self, tmp_path, capsys):
        assert main(["fleet", "status", "--dir", str(tmp_path)]) == 2
        assert "no campaign manifest" in _err(capsys)

    def test_connect_refused_is_actionable(self, capsys):
        # port 1 on localhost: nothing listens there in CI
        code = main(["fleet", "status", "--connect", "127.0.0.1:1"])
        assert code == 2
        assert _err(capsys).strip()


class TestFleetRunCli:
    def test_run_produces_campaign_report(self, tmp_path, capsys):
        code = main(
            ["fleet", "run", "--dir", str(tmp_path), "--workers", "2",
             "--benchmarks", "astar", "--schemes", "EP", "--no-cache",
             "--no-snapshot"] + _FAST
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1/1 points" in out
        report = json.load(open(tmp_path / "report.json"))
        assert report["complete"]
        assert (tmp_path / "shards").is_dir()

    def test_run_with_secret_file(self, tmp_path, capsys):
        # the secret reaches worker subprocesses via the environment
        secret = tmp_path / "secret"
        secret.write_text("cli-secret\n")
        code = main(
            ["fleet", "run", "--dir", str(tmp_path / "fleet"),
             "--workers", "1", "--secret-file", str(secret),
             "--benchmarks", "astar", "--schemes", "EP", "--no-cache",
             "--no-snapshot"] + _FAST
        )
        assert code == 0
        report = json.load(open(tmp_path / "fleet" / "report.json"))
        assert report["complete"]
