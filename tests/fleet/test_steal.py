"""Work-stealing: straggler lease tails move; overlap stays exactly-once."""

import asyncio
import json

from repro.campaign.executor import run_campaign
from repro.campaign.plan import CampaignSpec
from repro.fleet import fleet_run
from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.merge import shard_path
from repro.fleet.service import reap_workers, spawn_worker

_METRICS = {"perf_overhead": 0.1, "ed_overhead": 0.2, "ipc": 1.0,
            "fault_rate": 0.0, "replay_rate": 0.0}
_COUNTS = {"faults": 0, "replays": 0, "committed": 500}


def _spec(**overrides):
    knobs = dict(
        name="fleet-steal", benchmarks=["astar"], schemes=["EP"],
        vdds=[0.97], n_instructions=500, warmup=250, min_seeds=4,
        max_seeds=4, batch_size=4,
    )
    knobs.update(overrides)
    return CampaignSpec(**knobs)


def _ledger_events(directory):
    with open(f"{directory}/leases.jsonl") as fh:
        return [json.loads(line) for line in fh]


def _coordinator(directory, **kwargs):
    coordinator = FleetCoordinator(
        directory, spec=_spec(**kwargs.pop("spec_overrides", {})),
        linger=0.1, cache=False, snapshots=False, **kwargs
    )
    coordinator._prepare()
    return coordinator


class TestStealUnit:
    def test_idle_worker_steals_the_straggler_tail(self, tmp_path):
        async def go():
            coordinator = _coordinator(tmp_path)
            first = coordinator._grant("straggler")
            assert first["type"] == "lease"
            assert first["indices"] == [0, 1, 2, 3]
            second = coordinator._grant("idle")
            return coordinator, first, second

        coordinator, first, second = asyncio.run(go())
        # the tail (upper half) moved; the victim keeps the head
        assert second["type"] == "lease"
        assert second["indices"] == [2, 3]
        assert coordinator._leases[first["lease"]]["indices"] == {0, 1}
        assert coordinator.audit["steals"] == 1
        steals = [e for e in _ledger_events(tmp_path)
                  if e["event"] == "steal"]
        pid = coordinator._leases[second["lease"]]["point"]
        assert steals == [{
            "event": "steal", "thief_lease": second["lease"],
            "victim_lease": first["lease"], "point": pid,
            "indices": [2, 3], "worker": "idle", "victim": "straggler",
        }]

    def test_single_index_leases_are_not_stolen(self, tmp_path):
        async def go():
            coordinator = _coordinator(
                tmp_path,
                spec_overrides=dict(min_seeds=1, max_seeds=1,
                                    batch_size=1),
            )
            first = coordinator._grant("straggler")
            assert first["indices"] == [0]
            second = coordinator._grant("idle")
            return coordinator, second

        coordinator, second = asyncio.run(go())
        # a lone in-flight draw is already being executed; moving it
        # buys nothing — the idle worker waits instead
        assert second["type"] == "wait"
        assert coordinator.audit["steals"] == 0

    def test_steal_disabled_waits(self, tmp_path):
        async def go():
            coordinator = _coordinator(tmp_path, steal=False)
            coordinator._grant("straggler")
            return coordinator._grant("idle")

        assert asyncio.run(go())["type"] == "wait"

    def test_overlap_is_exactly_once_whoever_journals_first(
        self, tmp_path
    ):
        async def go():
            coordinator = _coordinator(tmp_path)
            first = coordinator._grant("straggler")
            second = coordinator._grant("idle")
            pid = coordinator._leases[second["lease"]]["point"]
            entry = {"event": "run", "point": pid, "index": 2,
                     "seed": 7, "metrics": _METRICS, "counts": _COUNTS}
            # the *victim* journals a stolen index first...
            coordinator._handle_entry("straggler", {"entry": entry})
            # ...and the thief's duplicate arrives second
            coordinator._handle_entry("idle", {"entry": dict(entry)})
            return coordinator, first, second

        coordinator, first, second = asyncio.run(go())
        # the draw credited the lease that holds it (the thief's), and
        # the duplicate was dropped before touching any shard journal
        assert coordinator._leases[second["lease"]]["indices"] == {3}
        assert coordinator._leases[first["lease"]]["indices"] == {0, 1}
        straggler_shard = open(shard_path(tmp_path, "straggler")).read()
        assert straggler_shard.count('"index": 2') == 1
        import os

        assert not os.path.exists(shard_path(tmp_path, "idle"))


class TestStealEndToEnd:
    def test_straggler_tail_is_stolen_byte_identical(self, tmp_path):
        run_campaign(
            str(tmp_path / "pool"), spec=_spec(), cache=False,
            snapshots=False,
        )
        fleet = tmp_path / "fleet"

        async def go():
            coordinator = FleetCoordinator(
                fleet, spec=_spec(), heartbeat_timeout=10.0, linger=0.2,
                cache=False, snapshots=False, wait_delay=0.1,
            )
            serve = asyncio.create_task(coordinator.serve())
            await coordinator.ready.wait()
            # a 10x-slower straggler takes the whole 4-draw lease...
            slow = spawn_worker(
                coordinator.host, coordinator.port, "slow",
                cache=False, snapshots=False, throttle=0.4,
            )
            while not coordinator._leases:
                await asyncio.sleep(0.01)
            # ...then a fast worker joins with nothing left to lease
            fast = spawn_worker(
                coordinator.host, coordinator.port, "fast",
                cache=False, snapshots=False,
            )
            report = await serve
            reap_workers([slow, fast])
            return report

        report = asyncio.run(go())
        assert report["complete"]
        assert (fleet / "journal.jsonl").read_bytes() == (
            tmp_path / "pool" / "journal.jsonl"
        ).read_bytes()
        assert (fleet / "report.json").read_bytes() == (
            tmp_path / "pool" / "report.json"
        ).read_bytes()
        events = _ledger_events(fleet)
        steals = [e for e in events if e["event"] == "steal"]
        assert steals, "the fast worker must have stolen the tail"
        assert steals[0]["victim"] == "slow"
        assert steals[0]["worker"] == "fast"

    def test_no_steal_events_when_disabled(self, tmp_path):
        fleet_run(
            tmp_path, spec=_spec(min_seeds=2, max_seeds=2, batch_size=2),
            workers=2, cache=False, snapshots=False, linger=0.2,
            steal=False,
        )
        events = _ledger_events(tmp_path)
        assert not [e for e in events if e["event"] == "steal"]
