"""Unit tests: secret resolution, HMAC proofs, TLS knobs, backoff."""

import pytest

from repro.fleet.security import (
    SECRET_ENV,
    SecurityError,
    client_ssl_context,
    coordinator_proof,
    macs_equal,
    new_nonce,
    resolve_secret,
    server_ssl_context,
    validate_tls_args,
    worker_proof,
)
from repro.fleet.worker import FleetWorker


class TestResolveSecret:
    def test_explicit_secret_wins(self, monkeypatch):
        monkeypatch.setenv(SECRET_ENV, "from-env")
        assert resolve_secret("explicit") == b"explicit"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(SECRET_ENV, "from-env")
        assert resolve_secret() == b"from-env"

    def test_none_when_no_source(self, monkeypatch):
        monkeypatch.delenv(SECRET_ENV, raising=False)
        assert resolve_secret() is None

    def test_secret_file_stripped(self, tmp_path, monkeypatch):
        monkeypatch.delenv(SECRET_ENV, raising=False)
        path = tmp_path / "secret"
        path.write_text("  hunter2\n")
        assert resolve_secret(secret_file=str(path)) == b"hunter2"

    def test_both_explicit_sources_rejected(self, tmp_path):
        path = tmp_path / "secret"
        path.write_text("x")
        with pytest.raises(SecurityError, match="not both"):
            resolve_secret("x", str(path))

    def test_unreadable_file_is_actionable(self, tmp_path):
        with pytest.raises(SecurityError, match="cannot read"):
            resolve_secret(secret_file=str(tmp_path / "nope"))

    def test_empty_secret_rejected(self, tmp_path, monkeypatch):
        monkeypatch.delenv(SECRET_ENV, raising=False)
        path = tmp_path / "secret"
        path.write_text("\n")
        with pytest.raises(SecurityError, match="non-empty"):
            resolve_secret(secret_file=str(path))
        with pytest.raises(SecurityError, match="non-empty"):
            resolve_secret("")


class TestProofs:
    def test_round_trip(self):
        cn, sn = new_nonce(), new_nonce()
        proof = worker_proof(b"k", cn, sn, "w0", "v1")
        assert macs_equal(worker_proof(b"k", cn, sn, "w0", "v1"), proof)

    def test_wrong_secret_fails(self):
        cn, sn = new_nonce(), new_nonce()
        assert not macs_equal(
            worker_proof(b"k", cn, sn, "w0", "v1"),
            worker_proof(b"other", cn, sn, "w0", "v1"),
        )

    def test_identity_is_bound(self):
        cn, sn = new_nonce(), new_nonce()
        assert not macs_equal(
            worker_proof(b"k", cn, sn, "w0", "v1"),
            worker_proof(b"k", cn, sn, "w1", "v1"),
        )
        assert not macs_equal(
            worker_proof(b"k", cn, sn, "w0", "v1"),
            worker_proof(b"k", cn, sn, "w0", "v2"),
        )

    def test_roles_are_domain_separated(self):
        # a recorded coordinator proof can never answer as a worker
        cn, sn = new_nonce(), new_nonce()
        assert coordinator_proof(b"k", cn, sn) != worker_proof(
            b"k", cn, sn, "", ""
        )

    def test_length_prefixing_prevents_concat_ambiguity(self):
        assert coordinator_proof(b"k", "ab", "c") != coordinator_proof(
            b"k", "a", "bc"
        )

    def test_macs_equal_rejects_garbage(self):
        proof = coordinator_proof(b"k", "a", "b")
        assert not macs_equal(proof, None)
        assert not macs_equal(proof, 42)
        assert not macs_equal(proof, proof[:-1])

    def test_nonces_are_unique(self):
        assert len({new_nonce() for _ in range(64)}) == 64


class TestTlsArgs:
    def test_cert_requires_key(self, tmp_path):
        cert = tmp_path / "cert.pem"
        cert.write_text("x")
        with pytest.raises(SecurityError, match="--tls-key"):
            validate_tls_args(tls_cert=str(cert))

    def test_key_requires_cert(self, tmp_path):
        key = tmp_path / "key.pem"
        key.write_text("x")
        with pytest.raises(SecurityError, match="--tls-cert"):
            validate_tls_args(tls_key=str(key))

    def test_unreadable_ca(self, tmp_path):
        with pytest.raises(SecurityError, match="cannot read --tls-ca"):
            validate_tls_args(tls_ca=str(tmp_path / "nope.pem"))

    def test_off_is_none(self):
        assert server_ssl_context() is None
        assert client_ssl_context() is None

    def test_server_ca_without_identity_rejected(self, tmp_path):
        ca = tmp_path / "ca.pem"
        ca.write_text("x")
        with pytest.raises(SecurityError, match="certificate"):
            server_ssl_context(tls_ca=str(ca))

    def test_garbage_identity_rejected(self, tmp_path):
        cert = tmp_path / "cert.pem"
        key = tmp_path / "key.pem"
        cert.write_text("not a pem")
        key.write_text("not a key")
        with pytest.raises(SecurityError, match="cannot load"):
            server_ssl_context(str(cert), str(key))


class TestBackoff:
    def _worker(self, **kwargs):
        return FleetWorker("127.0.0.1", 1, name="w0", **kwargs)

    def test_deterministic(self):
        a = self._worker()
        b = self._worker()
        assert [a.backoff_delay(i) for i in range(1, 6)] == [
            b.backoff_delay(i) for i in range(1, 6)
        ]

    def test_exponential_base_capped(self):
        worker = self._worker(
            reconnect_delay=0.5, reconnect_max_delay=4.0
        )
        for attempt, base in [(1, 0.5), (2, 1.0), (3, 2.0), (4, 4.0),
                              (5, 4.0), (10, 4.0)]:
            delay = worker.backoff_delay(attempt)
            # jitter scales into [0.5, 1.0) of the capped base
            assert base * 0.5 <= delay < base

    def test_jitter_desynchronizes_workers(self):
        delays = {
            FleetWorker(
                "127.0.0.1", 1, name=f"w{i}"
            ).backoff_delay(3)
            for i in range(8)
        }
        assert len(delays) > 1
