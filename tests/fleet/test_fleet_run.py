"""End to end: a local fleet reproduces the single-pool campaign bytes."""

import json

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.plan import CampaignSpec
from repro.fleet import FleetError, fleet_run
from repro.fleet.merge import shard_dir


def _spec(**overrides):
    knobs = dict(
        name="fleet-e2e", benchmarks=["astar"], schemes=["EP", "ABS"],
        vdds=[0.97], n_instructions=500, warmup=250, min_seeds=2,
        max_seeds=4, batch_size=2,
    )
    knobs.update(overrides)
    return CampaignSpec(**knobs)


def _single_pool(directory, **overrides):
    return run_campaign(
        str(directory), spec=_spec(**overrides), cache=False,
        snapshots=False,
    )


class TestFleetRun:
    def test_report_byte_identical_to_single_pool(self, tmp_path):
        _single_pool(tmp_path / "pool")
        fleet_run(
            tmp_path / "fleet", spec=_spec(), workers=2, cache=False,
            snapshots=False, linger=0.2,
        )
        assert (tmp_path / "fleet" / "journal.jsonl").read_bytes() == (
            tmp_path / "pool" / "journal.jsonl"
        ).read_bytes()
        assert (tmp_path / "fleet" / "report.json").read_bytes() == (
            tmp_path / "pool" / "report.json"
        ).read_bytes()

    def test_draws_split_across_workers(self, tmp_path):
        fleet_run(
            tmp_path, spec=_spec(), workers=2, cache=False,
            snapshots=False, linger=0.2,
        )
        shards = sorted(
            p.name for p in (tmp_path / "shards").glob("worker*.jsonl")
        )
        assert shards == ["worker0.jsonl", "worker1.jsonl"]
        # with 2 points and one lease per point, both workers got work
        for shard in shards:
            lines = (tmp_path / "shards" / shard).read_text().splitlines()
            assert len(lines) >= 1

    def test_rerun_of_complete_campaign_is_idempotent(self, tmp_path):
        fleet_run(
            tmp_path, spec=_spec(), workers=1, cache=False,
            snapshots=False, linger=0.2,
        )
        before = (tmp_path / "report.json").read_bytes()
        report = fleet_run(
            tmp_path, workers=1, resume=True, cache=False,
            snapshots=False, linger=0.2,
        )
        assert report["complete"]
        assert (tmp_path / "report.json").read_bytes() == before

    def test_refuses_progress_without_resume(self, tmp_path):
        fleet_run(
            tmp_path, spec=_spec(), workers=1, cache=False,
            snapshots=False, linger=0.2,
        )
        with pytest.raises(FleetError, match="resume"):
            fleet_run(tmp_path, workers=1, cache=False, snapshots=False,
                      linger=0.2)

    def test_report_marks_campaign_complete(self, tmp_path):
        report = fleet_run(
            tmp_path, spec=_spec(), workers=2, cache=False,
            snapshots=False, linger=0.2,
        )
        assert report["complete"]
        assert report["points_done"] == 2
        on_disk = json.load(open(tmp_path / "report.json"))
        assert on_disk == report

    def test_rejects_zero_workers(self, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            fleet_run(tmp_path, spec=_spec(), workers=0)

    def test_shard_layout(self, tmp_path):
        fleet_run(
            tmp_path, spec=_spec(), workers=1, cache=False,
            snapshots=False, linger=0.2,
        )
        assert (tmp_path / "leases.jsonl").exists()
        assert (tmp_path / "coordinator.json").exists()
        shards = shard_dir(tmp_path)
        assert (
            json.loads(open(tmp_path / "coordinator.json").read())["pid"]
        )
        coordinator_lines = open(
            f"{shards}/_coordinator.jsonl"
        ).read().splitlines()
        # one completion per point + the done marker
        assert len(coordinator_lines) == 3
        assert json.loads(coordinator_lines[-1]) == {"event": "done"}
