"""Wire framing: round trips, partial frames, oversize, torn streams."""

import asyncio

import pytest

from repro.fleet.protocol import (
    MAX_FRAME,
    ProtocolError,
    decode_frames,
    encode,
    read_message,
    send_message,
)


def _read(data):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_message(reader)

    return asyncio.run(go())


class TestFraming:
    def test_round_trip(self):
        message = {"type": "entry", "entry": {"metrics": {"ipc": 1.25}}}
        assert _read(encode(message)) == message

    def test_frames_are_length_prefixed(self):
        frame = encode({"a": 1})
        assert int.from_bytes(frame[:4], "big") == len(frame) - 4

    def test_decode_frames_splits_concatenation(self):
        buffer = encode({"i": 0}) + encode({"i": 1}) + encode({"i": 2})
        messages, rest = decode_frames(buffer)
        assert [m["i"] for m in messages] == [0, 1, 2]
        assert rest == b""

    def test_decode_frames_keeps_partial_tail(self):
        whole = encode({"i": 0})
        buffer = whole + encode({"i": 1})[:5]
        messages, rest = decode_frames(buffer)
        assert len(messages) == 1
        assert rest == encode({"i": 1})[:5]

    def test_oversize_encode_rejected(self):
        with pytest.raises(ProtocolError, match="ceiling"):
            encode({"blob": "x" * (MAX_FRAME + 1)})


class TestReadMessage:
    def test_clean_eof_is_connection_reset(self):
        with pytest.raises(ConnectionResetError):
            _read(b"")

    def test_death_mid_header_is_protocol_error(self):
        with pytest.raises(ProtocolError, match="mid-frame header"):
            _read(encode({"a": 1})[:2])

    def test_death_mid_payload_is_protocol_error(self):
        with pytest.raises(ProtocolError, match="mid-frame"):
            _read(encode({"a": 1})[:-1])

    def test_oversize_header_is_protocol_error(self):
        header = (MAX_FRAME + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError, match="ceiling"):
            _read(header + b"x" * 10)

    def test_undecodable_payload_is_protocol_error(self):
        frame = len(b"not json").to_bytes(4, "big") + b"not json"
        with pytest.raises(ProtocolError, match="undecodable"):
            _read(frame)


class TestSendMessage:
    def test_lock_serializes_interleaved_senders(self):
        """Two tasks hammering one writer never interleave frames."""
        chunks = []

        class FakeWriter:
            def write(self, data):
                chunks.append(bytes(data))

            async def drain(self):
                await asyncio.sleep(0)

        async def go():
            writer = FakeWriter()
            lock = asyncio.Lock()
            await asyncio.gather(*[
                send_message(writer, {"i": i}, lock) for i in range(20)
            ])

        asyncio.run(go())
        messages, rest = decode_frames(b"".join(chunks))
        assert rest == b""
        assert sorted(m["i"] for m in messages) == list(range(20))
