"""Chaos-proxy e2e: fleet output stays byte-identical under bad weather."""

import asyncio

from repro.campaign.executor import run_campaign
from repro.campaign.plan import CampaignSpec
from repro.fleet import ChaosConfig, ChaosProxy
from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.service import reap_workers, spawn_worker


def _spec(**overrides):
    knobs = dict(
        name="fleet-chaos", benchmarks=["astar"], schemes=["EP", "ABS"],
        vdds=[0.97], n_instructions=500, warmup=250, min_seeds=2,
        max_seeds=4, batch_size=2,
    )
    knobs.update(overrides)
    return CampaignSpec(**knobs)


def _chaos_fleet(fleet, config, workers=2):
    """Run a campaign with every worker connected through the proxy."""

    async def go():
        coordinator = FleetCoordinator(
            fleet, spec=_spec(), heartbeat_timeout=3.0, linger=0.3,
            cache=False, snapshots=False, wait_delay=0.1,
        )
        serve = asyncio.create_task(coordinator.serve())
        await coordinator.ready.wait()
        proxy = ChaosProxy(
            coordinator.host, coordinator.port, config=config
        )
        await proxy.start()
        procs = [
            spawn_worker(
                proxy.host, proxy.port, f"worker{i}",
                cache=False, snapshots=False,
                # a generous budget: every injected cut or partition
                # costs reconnects, and chaos must never exhaust them
                reconnect_attempts=40, reconnect_delay=0.05,
                reconnect_max_delay=0.3,
            )
            for i in range(workers)
        ]
        try:
            report = await serve
        finally:
            await asyncio.to_thread(reap_workers, procs)
            await proxy.stop()
        return report, dict(proxy.injected)

    return asyncio.run(go())


class TestChaosFleet:
    def _reference(self, tmp_path):
        run_campaign(
            str(tmp_path / "pool"), spec=_spec(), cache=False,
            snapshots=False,
        )

    def _assert_identical(self, tmp_path, fleet):
        assert (fleet / "journal.jsonl").read_bytes() == (
            tmp_path / "pool" / "journal.jsonl"
        ).read_bytes()
        assert (fleet / "report.json").read_bytes() == (
            tmp_path / "pool" / "report.json"
        ).read_bytes()

    def test_transparent_proxy_injects_nothing(self, tmp_path):
        self._reference(tmp_path)
        fleet = tmp_path / "fleet"
        report, injected = _chaos_fleet(fleet, ChaosConfig(seed=1))
        assert report["complete"]
        assert injected == {}
        self._assert_identical(tmp_path, fleet)

    def test_latency_dup_reorder_weather(self, tmp_path):
        self._reference(tmp_path)
        fleet = tmp_path / "fleet"
        config = ChaosConfig(
            seed=7, latency=0.05, latency_p=0.4, dup_p=0.25,
            reorder_p=0.25, max_events=0,  # no destructive events
        )
        report, injected = _chaos_fleet(fleet, config)
        assert report["complete"]
        # the weather actually happened — otherwise this proves nothing
        assert sum(injected.values()) > 0
        assert injected.get("dup", 0) + injected.get("reorder", 0) > 0
        self._assert_identical(tmp_path, fleet)

    def test_cuts_partitions_and_corruption(self, tmp_path):
        self._reference(tmp_path)
        fleet = tmp_path / "fleet"
        config = ChaosConfig(
            seed=11, cut_p=0.12, corrupt_p=0.08, partition_p=0.05,
            partition_s=0.2, max_events=4,
        )
        report, injected = _chaos_fleet(fleet, config)
        assert report["complete"]
        destructive = (
            injected.get("cut", 0) + injected.get("corrupt", 0)
            + injected.get("partition", 0)
        )
        assert 1 <= destructive <= 4
        self._assert_identical(tmp_path, fleet)
