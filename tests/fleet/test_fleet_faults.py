"""Fault paths: worker SIGKILL, heartbeat expiry, coordinator restart.

These run real coordinator/worker processes over localhost TCP and then
hold the merged journal to the acceptance bar: zero lost draws, zero
duplicated draws, bytes identical to a single-pool run of the same spec.
"""

import asyncio
import json
import signal

from repro.campaign.executor import run_campaign
from repro.campaign.plan import CampaignSpec
from repro.fleet import FleetWorker, fleet_run
from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.merge import shard_path
from repro.fleet.protocol import read_message, send_message
from repro.fleet.service import reap_workers, spawn_worker

#: slow enough that a SIGKILL lands mid-lease, fast enough for CI
_DRAW = dict(n_instructions=8000, warmup=2000)


def _spec(**overrides):
    knobs = dict(
        name="fleet-faults", benchmarks=["astar"], schemes=["EP"],
        vdds=[0.97], min_seeds=4, max_seeds=4, batch_size=4, **_DRAW,
    )
    knobs.update(overrides)
    return CampaignSpec(**knobs)


def _single_pool(directory, **overrides):
    return run_campaign(
        str(directory), spec=_spec(**overrides), cache=False,
        snapshots=False,
    )


async def _await_journal_lines(path, n, timeout=60.0):
    deadline = asyncio.get_event_loop().time() + timeout
    while asyncio.get_event_loop().time() < deadline:
        try:
            with open(path) as fh:
                if sum(1 for line in fh if line.endswith("\n")) >= n:
                    return
        except FileNotFoundError:
            pass
        await asyncio.sleep(0.02)
    raise AssertionError(f"{path} never reached {n} journaled entries")


def _ledger_events(directory):
    with open(f"{directory}/leases.jsonl") as fh:
        return [json.loads(line) for line in fh]


def _journal_draws(directory):
    """(point, index) of every run event in the merged journal, in order."""
    draws = []
    with open(f"{directory}/journal.jsonl") as fh:
        for line in fh:
            event = json.loads(line)
            if event["event"] == "run":
                draws.append((event["point"], event["index"]))
    return draws


class TestWorkerDeath:
    def test_sigkill_mid_lease_loses_and_duplicates_nothing(self, tmp_path):
        _single_pool(tmp_path / "pool")
        fleet = tmp_path / "fleet"

        async def go():
            coordinator = FleetCoordinator(
                fleet, spec=_spec(), heartbeat_timeout=10.0, linger=0.2,
                cache=False, snapshots=False,
            )
            serve = asyncio.create_task(coordinator.serve())
            await coordinator.ready.wait()
            victim = spawn_worker(
                coordinator.host, coordinator.port, "victim",
                cache=False, snapshots=False,
            )
            # kill the worker the moment its first draw is journaled —
            # with a 4-draw lease it is guaranteed to die mid-lease
            await _await_journal_lines(shard_path(fleet, "victim"), 1)
            victim.send_signal(signal.SIGKILL)
            victim.wait()
            rescuer = spawn_worker(
                coordinator.host, coordinator.port, "rescuer",
                cache=False, snapshots=False,
            )
            report = await serve
            reap_workers([rescuer])
            return report

        report = asyncio.run(go())
        assert report["complete"]
        point = _spec().points()[0].id
        assert _journal_draws(fleet) == [(point, i) for i in range(4)]
        assert (fleet / "journal.jsonl").read_bytes() == (
            tmp_path / "pool" / "journal.jsonl"
        ).read_bytes()
        assert (fleet / "report.json").read_bytes() == (
            tmp_path / "pool" / "report.json"
        ).read_bytes()
        # the victim's lease was revoked when its socket dropped, and its
        # unfinished indices reappeared under a later lease
        events = _ledger_events(fleet)
        revoked = [e for e in events if e["event"] == "revoke"]
        assert revoked, "worker death must revoke its lease"
        grants = {e["lease"]: e for e in events if e["event"] == "lease"}
        victim_grant = grants[revoked[0]["lease"]]
        journaled = {
            index for _, index in _journal_draws(fleet)
        }
        assert set(victim_grant["indices"]) <= journaled


class TestHeartbeatExpiry:
    def test_silent_worker_is_revoked_and_draws_reassigned(self, tmp_path):
        _single_pool(tmp_path / "pool", n_instructions=500, warmup=250)
        fleet = tmp_path / "fleet"

        async def go():
            from repro.harness.parallel import model_version

            coordinator = FleetCoordinator(
                fleet, spec=_spec(n_instructions=500, warmup=250),
                heartbeat_timeout=0.6, wait_delay=0.1, linger=0.1,
                cache=False, snapshots=False,
            )
            serve = asyncio.create_task(coordinator.serve())
            await coordinator.ready.wait()
            # a worker that takes a lease and then goes silent: no
            # heartbeats, no entries, but the socket stays open
            reader, writer = await asyncio.open_connection(
                coordinator.host, coordinator.port
            )
            await send_message(writer, {
                "type": "hello", "worker": "sloth",
                "model_version": model_version(),
            })
            config = await read_message(reader)
            assert config["type"] == "config"
            await send_message(writer, {"type": "request"})
            lease = await read_message(reader)
            assert lease["type"] == "lease"
            diligent = FleetWorker(
                coordinator.host, coordinator.port, name="diligent",
                cache=False, snapshots=False,
            )
            worker_task = asyncio.create_task(diligent.run())
            report = await serve
            writer.close()
            assert await worker_task == 0
            return report

        report = asyncio.run(go())
        assert report["complete"]
        assert (fleet / "journal.jsonl").read_bytes() == (
            tmp_path / "pool" / "journal.jsonl"
        ).read_bytes()
        events = _ledger_events(fleet)
        expiries = [
            e for e in events
            if e["event"] == "revoke" and e["reason"] == "heartbeat timeout"
        ]
        assert expiries, "silence past the timeout must revoke the lease"
        # every draw came from the diligent worker's re-lease; the silent
        # worker never contributed an entry, so it never got a shard
        import os

        assert not os.path.exists(shard_path(fleet, "sloth"))
        assert os.path.exists(shard_path(fleet, "diligent"))


class TestCoordinatorRestart:
    def test_resume_after_coordinator_crash(self, tmp_path):
        _single_pool(tmp_path / "pool", batch_size=2)
        fleet = tmp_path / "fleet"

        async def crash_mid_campaign():
            coordinator = FleetCoordinator(
                fleet, spec=_spec(batch_size=2), heartbeat_timeout=10.0,
                linger=0.2, cache=False, snapshots=False,
            )
            serve = asyncio.create_task(coordinator.serve())
            await coordinator.ready.wait()
            worker = spawn_worker(
                coordinator.host, coordinator.port, "w0",
                cache=False, snapshots=False,
            )
            # let the first batch (2 of 4 draws) land, then "crash":
            # cancel the serve task without any graceful finalization
            await _await_journal_lines(shard_path(fleet, "w0"), 2)
            serve.cancel()
            try:
                await serve
            except asyncio.CancelledError:
                pass
            worker.terminate()
            worker.wait()

        asyncio.run(crash_mid_campaign())
        assert not (fleet / "journal.jsonl").exists()  # died pre-merge

        report = fleet_run(
            fleet, workers=1, resume=True, cache=False, snapshots=False,
            linger=0.2,
        )
        assert report["complete"]
        point = _spec().points()[0].id
        assert _journal_draws(fleet) == [(point, i) for i in range(4)]
        assert (fleet / "journal.jsonl").read_bytes() == (
            tmp_path / "pool" / "journal.jsonl"
        ).read_bytes()
        assert (fleet / "report.json").read_bytes() == (
            tmp_path / "pool" / "report.json"
        ).read_bytes()
