"""Elastic pools: the autoscaler policy, drain-then-exit, and e2e growth."""

import asyncio
import json

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.plan import CampaignSpec
from repro.fleet import FleetWorker, fleet_run
from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.merge import shard_path
from repro.fleet.service import ElasticPool, fleet_run as _fleet_run
from repro.fleet.service import scale_decision


def _spec(**overrides):
    knobs = dict(
        name="fleet-elastic", benchmarks=["astar"], schemes=["EP", "ABS"],
        vdds=[0.97], n_instructions=500, warmup=250, min_seeds=2,
        max_seeds=2, batch_size=2,
    )
    knobs.update(overrides)
    return CampaignSpec(**knobs)


def _load(**overrides):
    load = dict(
        queue_depth=0, open_points=1, leases=1, workers=1, idle=0,
        idle_workers=[], max_wait_s=0.0, draining=[], complete=False,
    )
    load.update(overrides)
    return load


class TestScaleDecision:
    def test_holds_at_steady_state(self):
        assert scale_decision(_load(), 2, 0, 1, 4) == ("hold", None)

    def test_spawns_below_floor(self):
        action, _ = scale_decision(_load(), 1, 0, 2, 4)
        assert action == "spawn"
        # a draining worker no longer counts toward the floor
        action, _ = scale_decision(_load(), 2, 1, 2, 4)
        assert action == "spawn"

    def test_spawns_on_queued_work_with_no_idle(self):
        load = _load(queue_depth=2, idle=0)
        assert scale_decision(load, 2, 0, 1, 4) == ("spawn", None)

    def test_respects_the_ceiling(self):
        load = _load(queue_depth=5, idle=0)
        assert scale_decision(load, 4, 0, 1, 4) == ("hold", None)

    def test_no_spawn_while_a_worker_idles(self):
        # an idle worker means leasing, not pool size, is the bottleneck
        load = _load(queue_depth=1, idle=1, idle_workers=["w1"],
                     max_wait_s=0.1)
        assert scale_decision(load, 2, 0, 1, 4) == ("hold", None)

    def test_retires_a_persistently_idle_worker(self):
        load = _load(idle=1, idle_workers=["w1"], max_wait_s=2.0)
        assert scale_decision(load, 2, 0, 1, 4, idle_grace=1.0) == (
            "retire", "w1"
        )

    def test_never_retires_below_the_floor(self):
        load = _load(idle=1, idle_workers=["w0"], max_wait_s=9.0)
        assert scale_decision(load, 1, 0, 1, 4) == ("hold", None)

    def test_brief_idleness_is_not_retirement(self):
        load = _load(idle=1, idle_workers=["w1"], max_wait_s=0.2)
        assert scale_decision(load, 2, 0, 1, 4, idle_grace=1.0) == (
            "hold", None
        )

    def test_already_draining_workers_are_not_re_retired(self):
        load = _load(idle=1, idle_workers=["w1"], max_wait_s=5.0,
                     draining=["w1"])
        assert scale_decision(load, 2, 1, 1, 4) == ("hold", None)


class TestPoolValidation:
    def test_min_must_not_exceed_max(self, tmp_path):
        with pytest.raises(ValueError, match="min_workers"):
            fleet_run(tmp_path, spec=_spec(), workers=1, min_workers=3,
                      max_workers=2)

    def test_min_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="min_workers"):
            fleet_run(tmp_path, spec=_spec(), workers=1, min_workers=0,
                      max_workers=2)

    def test_elastic_pool_validates_band(self, tmp_path):
        async def go():
            coordinator = FleetCoordinator(
                tmp_path, spec=_spec(), cache=False, snapshots=False,
            )
            coordinator._prepare()
            with pytest.raises(ValueError, match="min_workers"):
                ElasticPool(coordinator, 3, 2)

        asyncio.run(go())


class TestDrainThenExit:
    def test_drained_worker_finishes_lease_and_exits_zero(self, tmp_path):
        run_campaign(
            str(tmp_path / "pool"), spec=_spec(), cache=False,
            snapshots=False,
        )
        fleet = tmp_path / "fleet"

        async def go():
            # stealing off so the in-flight lease provably stays whole
            coordinator = FleetCoordinator(
                fleet, spec=_spec(), linger=0.2, cache=False,
                snapshots=False, wait_delay=0.1, steal=False,
            )
            serve = asyncio.create_task(coordinator.serve())
            await coordinator.ready.wait()
            retiree = FleetWorker(
                coordinator.host, coordinator.port, name="retiree",
                cache=False, snapshots=False, throttle=0.2,
            )
            retiree_task = asyncio.create_task(retiree.run())
            while not coordinator._leases:
                await asyncio.sleep(0.01)
            # retire it mid-lease: it must finish in-flight draws first
            coordinator.drain_worker("retiree")
            finisher = FleetWorker(
                coordinator.host, coordinator.port, name="finisher",
                cache=False, snapshots=False,
            )
            finisher_task = asyncio.create_task(finisher.run())
            report = await serve
            return report, await retiree_task, await finisher_task

        report, retiree_code, finisher_code = asyncio.run(go())
        assert report["complete"]
        assert retiree_code == 0  # clean shutdown, not an error path
        assert finisher_code == 0
        # the drained worker journaled its whole in-flight lease — a
        # scale-down loses zero draws
        lines = open(shard_path(fleet, "retiree")).read().splitlines()
        assert len(lines) == 2
        assert (fleet / "journal.jsonl").read_bytes() == (
            tmp_path / "pool" / "journal.jsonl"
        ).read_bytes()


class TestElasticEndToEnd:
    def test_pool_grows_under_queued_work(self, tmp_path):
        run_campaign(
            str(tmp_path / "pool"), spec=_spec(), cache=False,
            snapshots=False,
        )
        fleet = tmp_path / "fleet"
        report = _fleet_run(
            fleet, spec=_spec(), workers=1, min_workers=1, max_workers=3,
            cache=False, snapshots=False, linger=0.2,
        )
        assert report["complete"]
        assert (fleet / "journal.jsonl").read_bytes() == (
            tmp_path / "pool" / "journal.jsonl"
        ).read_bytes()
        assert (fleet / "report.json").read_bytes() == (
            tmp_path / "pool" / "report.json"
        ).read_bytes()
        events = [
            json.loads(line)
            for line in open(fleet / "leases.jsonl")
        ]
        scales = [e for e in events if e["event"] == "scale"]
        spawns = [e for e in scales if e["action"] == "spawn"]
        assert spawns and spawns[0]["worker"] == "worker0"
        assert spawns[0]["reason"] == "initial pool"
