"""A hostile or broken client must cost the fleet one connection, ever.

Regression tests for the structured :class:`ProtocolError` path: the
coordinator drops (and audits) the offending connection while its serve
loop and every honest worker keep going to a byte-identical finish.
"""

import asyncio

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.plan import CampaignSpec
from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.protocol import (
    MAX_FRAME,
    ProtocolError,
    encode,
    read_message,
)
from repro.fleet.service import reap_workers, spawn_worker


def _spec():
    return CampaignSpec(
        name="fleet-hostile", benchmarks=["astar"], schemes=["EP"],
        vdds=[0.97], n_instructions=500, warmup=250, min_seeds=2,
        max_seeds=2, batch_size=2,
    )


class TestProtocolErrorStructure:
    def test_carries_peer_and_frame_size(self):
        exc = ProtocolError("too big", peer="10.0.0.9:1234",
                            frame_size=MAX_FRAME + 1)
        assert exc.reason == "too big"
        assert exc.peer == "10.0.0.9:1234"
        assert exc.frame_size == MAX_FRAME + 1
        assert "10.0.0.9:1234" in str(exc)
        assert str(MAX_FRAME + 1) in str(exc)

    def test_read_message_threads_peer(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data((MAX_FRAME + 1).to_bytes(4, "big"))
            with pytest.raises(ProtocolError) as err:
                await read_message(reader, peer="evil:1")
            return err.value

        exc = asyncio.run(go())
        assert exc.peer == "evil:1"
        assert exc.frame_size == MAX_FRAME + 1


class TestMaliciousClient:
    def test_oversize_and_truncated_frames_drop_only_their_connection(
        self, tmp_path, capsys
    ):
        _single = run_campaign(
            str(tmp_path / "pool"), spec=_spec(), cache=False,
            snapshots=False,
        )
        fleet = tmp_path / "fleet"

        async def attack(host, port):
            # attacker 1: a frame header advertising a 2 GiB payload
            reader, writer = await asyncio.open_connection(host, port)
            writer.write((2 ** 31).to_bytes(4, "big") + b"\x00" * 64)
            await writer.drain()
            reply = await read_message(reader)
            writer.close()
            # attacker 2: a truncated frame (header promises more)
            _, writer2 = await asyncio.open_connection(host, port)
            writer2.write(encode({"type": "hello"})[:-3])
            writer2.write_eof()
            await writer2.drain()
            writer2.close()
            return reply

        async def go():
            coordinator = FleetCoordinator(
                fleet, spec=_spec(), linger=0.2, cache=False,
                snapshots=False,
            )
            task = asyncio.create_task(coordinator.serve())
            await coordinator.ready.wait()
            reply = await attack(coordinator.host, coordinator.port)
            # the serve loop survived both: an honest worker joining
            # *after* the attacks completes the whole campaign
            proc = spawn_worker(
                coordinator.host, coordinator.port, "honest",
                cache=False, snapshots=False,
            )
            report = await task
            reap_workers([proc])
            return reply, dict(coordinator.audit), report

        reply, audit, report = asyncio.run(go())
        assert reply["type"] == "error"
        assert reply["code"] == "protocol"
        assert audit["protocol_errors"] == 2
        assert report["complete"]
        assert (fleet / "journal.jsonl").read_bytes() == (
            tmp_path / "pool" / "journal.jsonl"
        ).read_bytes()
        # the drop is logged with the peer's address for the audit trail
        assert "dropping connection" in capsys.readouterr().err
