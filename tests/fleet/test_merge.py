"""Shard replay, exactly-once dedup, and canonical byte-identical merge."""

import json
import os

from repro.campaign.journal import Journal, write_manifest
from repro.campaign.plan import CampaignSpec
from repro.fleet.merge import (
    list_shards,
    merge_journals,
    replay_shards,
    shard_dir,
    shard_path,
)


def _spec():
    return CampaignSpec(
        name="m", benchmarks=["astar"], schemes=["EP", "ABS"],
        n_instructions=500, warmup=250, min_seeds=2, max_seeds=2,
        batch_size=2,
    )


def _run(point, index):
    return {
        "event": "run", "point": point, "index": index, "seed": 100 + index,
        "metrics": {"perf_overhead": 0.1 * (index + 1), "ipc": 1.0,
                    "ed_overhead": 0.2, "fault_rate": 0.01,
                    "replay_rate": 0.0},
        "counts": {"faults": index, "replays": 0, "committed": 500},
    }


def _point(point, n=2):
    return {"event": "point", "point": point, "n": n, "stopped": "ci",
            "summary": {"mean": 0.15}}


def _shard(directory, name, events):
    journal = Journal(shard_dir(directory), f"{name}.jsonl")
    with journal:
        for event in events:
            journal.append(event)


class TestReplayShards:
    def test_coordinator_shard_listed_first(self, tmp_path):
        _shard(tmp_path, "aaa", [_run("p", 0)])
        _shard(tmp_path, "_coordinator", [_point("p")])
        assert list_shards(tmp_path)[0] == shard_path(
            tmp_path, "_coordinator"
        )

    def test_duplicate_draws_deduplicated(self, tmp_path):
        p = "astar/EP/0.97"
        _shard(tmp_path, "w0", [_run(p, 0), _run(p, 1)])
        _shard(tmp_path, "w1", [_run(p, 1), _run(p, 0)])  # reassigned lease
        state = replay_shards(tmp_path)
        assert [r["index"] for r in state.runs[p]] == [0, 1]
        assert state.total_runs == 2

    def test_runs_sorted_by_index(self, tmp_path):
        p = "astar/EP/0.97"
        _shard(tmp_path, "w0", [_run(p, 2), _run(p, 0), _run(p, 1)])
        assert [r["index"] for r in replay_shards(tmp_path).runs[p]] == (
            [0, 1, 2]
        )

    def test_base_state_wins_dedup(self, tmp_path):
        p = "astar/EP/0.97"
        base_dir = tmp_path / "base"
        with Journal(base_dir) as journal:
            base_record = _run(p, 0)
            base_record["seed"] = 42  # distinguishable from the shard copy
            journal.append(base_record)
        _shard(tmp_path, "w0", [_run(p, 0), _run(p, 1)])
        state = replay_shards(tmp_path, base=Journal(base_dir).replay())
        assert state.runs[p][0]["seed"] == 42
        assert state.total_runs == 2

    def test_done_marker_survives(self, tmp_path):
        _shard(tmp_path, "_coordinator", [{"event": "done"}])
        assert replay_shards(tmp_path).done


class TestMergeJournals:
    def test_merge_matches_single_pool_bytes(self, tmp_path):
        """Scattered shard entries merge to the exact single-pool journal."""
        spec = _spec()
        points = [p.id for p in spec.points()]
        pool = tmp_path / "pool"
        write_manifest(pool, spec)
        with Journal(pool) as journal:
            for point in points:
                journal.append(_run(point, 0))
                journal.append(_run(point, 1))
                journal.append(_point(point))
            journal.append({"event": "done"})

        fleet = tmp_path / "fleet"
        write_manifest(fleet, spec)
        # interleaved arrival order across two workers + a duplicate
        _shard(fleet, "w0", [
            _run(points[0], 1), _run(points[1], 0),
        ])
        _shard(fleet, "w1", [
            _run(points[1], 1), _run(points[0], 0), _run(points[0], 1),
        ])
        _shard(fleet, "_coordinator", [
            _point(points[1]), _point(points[0]), {"event": "done"},
        ])
        merge_journals(fleet)
        pool_bytes = (pool / "journal.jsonl").read_bytes()
        fleet_bytes = (fleet / "journal.jsonl").read_bytes()
        assert fleet_bytes == pool_bytes

    def test_merge_is_idempotent(self, tmp_path):
        spec = _spec()
        write_manifest(tmp_path, spec)
        _shard(tmp_path, "w0", [_run(spec.points()[0].id, 0)])
        merge_journals(tmp_path)
        first = (tmp_path / "journal.jsonl").read_bytes()
        merge_journals(tmp_path)
        assert (tmp_path / "journal.jsonl").read_bytes() == first

    def test_merge_atomic_no_temp_left(self, tmp_path):
        spec = _spec()
        write_manifest(tmp_path, spec)
        _shard(tmp_path, "w0", [_run(spec.points()[0].id, 0)])
        merge_journals(tmp_path)
        leftovers = [
            name for name in os.listdir(tmp_path) if ".tmp." in name
        ]
        assert leftovers == []

    def test_merged_journal_is_valid_jsonl(self, tmp_path):
        spec = _spec()
        write_manifest(tmp_path, spec)
        point = spec.points()[0].id
        _shard(tmp_path, "w0", [_run(point, 0), _run(point, 1)])
        _shard(tmp_path, "_coordinator", [_point(point)])
        merge_journals(tmp_path)
        lines = (tmp_path / "journal.jsonl").read_text().splitlines()
        assert len(lines) == 3
        for line in lines:
            json.loads(line)
