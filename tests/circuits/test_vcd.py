"""VCD waveform output."""

import pytest

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist
from repro.circuits.vcd import VcdWriter, _identifier, dump_vcd


def _xor_netlist():
    nl = Netlist("xor2")
    a, b = nl.add_input(), nl.add_input()
    nl.mark_output(nl.add_gate(GateType.XOR2, [a, b]))
    return nl


def test_identifier_codes_unique():
    ids = {_identifier(i) for i in range(500)}
    assert len(ids) == 500
    assert _identifier(0) == "!"


def test_header_declares_all_ports():
    writer = VcdWriter(_xor_netlist())
    text = writer.render()
    assert "$timescale 1ns $end" in text
    assert "$var wire 1 ! in0 $end" in text
    assert "out0" in text
    assert "$enddefinitions $end" in text


def test_changes_recorded_per_timestep():
    nl = _xor_netlist()
    writer = VcdWriter(nl)
    writer.sample([0, 0])
    writer.sample([1, 0])   # output toggles
    writer.sample([1, 0])   # nothing changes
    text = writer.render()
    assert "#0" in text and "#1" in text
    # the quiet step emits no #2 timestamp; the document ends at #3
    assert "#2" not in text
    assert text.rstrip().endswith("#3")


def test_only_changes_emitted():
    nl = _xor_netlist()
    writer = VcdWriter(nl)
    writer.sample([0, 0])
    writer.sample([0, 0])
    changes_after = len(writer._changes)
    # first sample records initial values; the identical second adds none
    assert changes_after == len(writer._nets)


def test_internal_nets_optional():
    nl = Netlist("chain")
    a = nl.add_input()
    x = nl.add_gate(GateType.INV, [a])
    nl.mark_output(nl.add_gate(GateType.INV, [x]))
    plain = VcdWriter(nl)
    full = VcdWriter(nl, include_internal=True)
    assert len(full._nets) > len(plain._nets)


def test_dump_vcd_file(tmp_path):
    nl = _xor_netlist()
    path = dump_vcd(nl, [[0, 0], [1, 0], [1, 1]], tmp_path / "wave.vcd")
    content = open(path).read()
    assert content.startswith("$date")
    assert "#2" in content


def test_dump_vcd_type_check(tmp_path):
    with pytest.raises(TypeError):
        dump_vcd("not a netlist", [], tmp_path / "x.vcd")
