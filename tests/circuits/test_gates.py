"""Gate truth tables."""

import itertools

import pytest

from repro.circuits.gates import GATE_ARITY, GateType, eval_gate


REFERENCE = {
    GateType.INV: lambda a: a ^ 1,
    GateType.BUF: lambda a: a,
    GateType.AND2: lambda a, b: a & b,
    GateType.OR2: lambda a, b: a | b,
    GateType.NAND2: lambda a, b: (a & b) ^ 1,
    GateType.NOR2: lambda a, b: (a | b) ^ 1,
    GateType.XOR2: lambda a, b: a ^ b,
    GateType.XNOR2: lambda a, b: a ^ b ^ 1,
    GateType.MUX2: lambda a, b, s: b if s else a,
    GateType.AND3: lambda a, b, c: a & b & c,
    GateType.OR3: lambda a, b, c: a | b | c,
}


def test_every_gate_has_arity_and_reference():
    for gtype in GateType:
        assert gtype in GATE_ARITY
        assert gtype in REFERENCE


@pytest.mark.parametrize("gtype", list(GateType))
def test_full_truth_table(gtype):
    arity = GATE_ARITY[gtype]
    for inputs in itertools.product((0, 1), repeat=arity):
        assert eval_gate(gtype, list(inputs)) == REFERENCE[gtype](*inputs)


def test_outputs_are_binary():
    for gtype in GateType:
        arity = GATE_ARITY[gtype]
        for inputs in itertools.product((0, 1), repeat=arity):
            assert eval_gate(gtype, list(inputs)) in (0, 1)
