"""Razor flip-flop detection model: coverage, hold padding, overhead."""

import pytest

from repro.circuits.builders import build_agen, build_forward_check
from repro.circuits.gates import GateType
from repro.circuits.library import default_library
from repro.circuits.netlist import Netlist
from repro.circuits.razor import (
    RazorOverheadReport,
    detection_coverage,
    min_delay_padding,
    min_path_delays,
    razor_overhead,
)
from repro.circuits.sta import critical_path
from repro.faults.variation import ProcessVariationModel


@pytest.fixture(scope="module")
def lib():
    return default_library()


@pytest.fixture(scope="module")
def agen():
    netlist, _ = build_agen(width=8)
    return netlist


class TestDetectionCoverage:
    def test_slack_rich_clock_never_violates(self, agen, lib):
        nominal, _ = critical_path(agen, lib)
        report = detection_coverage(
            agen, lib, ProcessVariationModel(seed=1), t_clk=2 * nominal,
            n_samples=16,
        )
        assert report.coverage == 1.0
        assert report.escape_rate == 0.0

    def test_tight_clock_with_wide_window_catches_all(self, agen, lib):
        nominal, _ = critical_path(agen, lib)
        report = detection_coverage(
            agen, lib, ProcessVariationModel(seed=1),
            t_clk=0.95 * nominal, window_frac=1.0, n_samples=32,
        )
        assert report.coverage == 1.0

    def test_narrow_window_lets_violations_escape(self, agen, lib):
        nominal, _ = critical_path(agen, lib)
        # clock far below the slowest path: most violations exceed a 1%
        # shadow window and escape detection
        report = detection_coverage(
            agen, lib, ProcessVariationModel(deviation=0.3, seed=2),
            t_clk=0.7 * nominal, window_frac=0.01, n_samples=32,
        )
        assert report.escape_rate > 0.5

    def test_rejects_bad_parameters(self, agen, lib):
        with pytest.raises(ValueError):
            detection_coverage(agen, lib, ProcessVariationModel(), t_clk=0)


class TestMinDelay:
    def test_min_path_of_chain(self, lib):
        nl = Netlist()
        a = nl.add_input()
        x = nl.add_gate(GateType.INV, [a])
        nl.mark_output(x)
        mins = min_path_delays(nl, lib)
        assert mins[x] == pytest.approx(lib.gate_delay(GateType.INV))

    def test_min_takes_fastest_input(self, lib):
        nl = Netlist()
        a = nl.add_input()
        slow = nl.add_gate(GateType.INV, [a])
        slow = nl.add_gate(GateType.INV, [slow])
        out = nl.add_gate(GateType.AND2, [a, slow])  # fast side: direct a
        nl.mark_output(out)
        mins = min_path_delays(nl, lib)
        assert mins[out] == pytest.approx(lib.gate_delay(GateType.AND2))

    def test_padding_counts_buffers(self, lib):
        nl = Netlist()
        a = nl.add_input()
        out = nl.add_gate(GateType.INV, [a])  # ~11ps min path
        nl.mark_output(out)
        n_buffers, padded = min_delay_padding(nl, lib, window=50.0)
        assert padded == 1
        # needs ceil((50-11)/16) = 3 buffers
        assert n_buffers == 3

    def test_no_padding_when_paths_slow(self, agen, lib):
        n_buffers, padded = min_delay_padding(agen, lib, window=1.0)
        assert n_buffers == 0 and padded == 0

    def test_rejects_negative_window(self, agen, lib):
        with pytest.raises(ValueError):
            min_delay_padding(agen, lib, window=-1)


class TestOverhead:
    def test_overhead_positive_and_bounded(self, agen, lib):
        report = razor_overhead(agen, lib)
        assert isinstance(report, RazorOverheadReport)
        assert report.n_flops == len(agen.outputs)
        assert 0.0 < report.area_overhead < 1.0
        assert 0.0 < report.energy_overhead < 1.0

    def test_shallow_logic_needs_hold_buffers(self, lib):
        # the forward-check's fast comparator outputs violate the hold
        # window at its own critical-path-derived Tclk
        netlist, _ = build_forward_check(width=2, n_srcs=1, tag_bits=4)
        report = razor_overhead(netlist, lib, window_frac=0.5)
        assert report.n_buffers > 0

    def test_wider_window_costs_more(self, agen, lib):
        narrow = razor_overhead(agen, lib, window_frac=0.2)
        wide = razor_overhead(agen, lib, window_frac=0.9)
        assert wide.n_buffers >= narrow.n_buffers

    def test_razor_costs_more_than_vte_metadata(self, lib):
        """The paper's economics: per-stage Razor protection is far more
        expensive than the VTE's 4-bit issue-queue field (Section S3)."""
        from repro.power.overhead import SchedulerOverheadModel

        netlist, _ = build_agen()
        razor = razor_overhead(netlist, lib)
        vte = SchedulerOverheadModel().report("ABS")
        assert razor.area_overhead > 5 * vte.area
