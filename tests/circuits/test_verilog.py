"""Structural Verilog export/import round-trip."""

import random

import pytest

from repro.circuits.builders import (
    build_agen,
    build_alu,
    build_forward_check,
    build_incrementer,
    build_issue_select,
)
from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist
from repro.circuits.verilog import parse_verilog, write_verilog


def _roundtrip_equivalent(netlist, n_vectors=40, seed=0):
    text = write_verilog(netlist)
    parsed = parse_verilog(text)
    assert len(parsed.inputs) == len(netlist.inputs)
    assert len(parsed.outputs) == len(netlist.outputs)
    rng = random.Random(seed)
    for _ in range(n_vectors):
        vector = [rng.randint(0, 1) for _ in netlist.inputs]
        assert netlist.simulate(vector) == parsed.simulate(vector)


def test_emits_module_skeleton():
    nl = Netlist("demo")
    a = nl.add_input()
    nl.mark_output(nl.add_gate(GateType.INV, [a]))
    text = write_verilog(nl)
    assert text.startswith("module demo (in0, out0);")
    assert "  input in0;" in text
    assert "  output out0;" in text
    assert "  not g0 (n2, in0);" in text
    assert text.rstrip().endswith("endmodule")


def test_mux_emitted_as_ternary():
    nl = Netlist("m")
    a, b, sel = nl.add_input(), nl.add_input(), nl.add_input()
    nl.mark_output(nl.add_gate(GateType.MUX2, [a, b, sel]))
    text = write_verilog(nl)
    assert "? in1 : in0" in text


def test_const_zero_handled():
    nl = Netlist("c")
    a = nl.add_input()
    nl.mark_output(nl.add_gate(GateType.OR2, [a, nl.const0]))
    _roundtrip_equivalent(nl)


@pytest.mark.parametrize("builder,kwargs", [
    (build_incrementer, {"bits": 4}),
    (build_agen, {"width": 8}),
    (build_issue_select, {"n_requests": 8, "n_grants": 2}),
    (build_forward_check, {"width": 2, "n_srcs": 1, "tag_bits": 4}),
])
def test_roundtrip_component(builder, kwargs):
    netlist, _ = builder(**kwargs)
    _roundtrip_equivalent(netlist)


def test_roundtrip_alu_small_sample():
    netlist, _ = build_alu()
    _roundtrip_equivalent(netlist, n_vectors=8)


def test_module_name_sanitized():
    nl = Netlist("a b-c")
    x = nl.add_input()
    nl.mark_output(nl.add_gate(GateType.BUF, [x]))
    assert "module a_b_c (" in write_verilog(nl)


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        parse_verilog("wire x;")
