"""Synthesis reports and library accounting."""

import pytest

from repro.circuits.builders import build_agen, build_alu
from repro.circuits.library import default_library
from repro.circuits.synthesis import synthesize


def test_report_fields_consistent():
    nl, _ = build_agen(width=8)
    report = synthesize(nl, mapped=False)
    assert report.n_gates == nl.n_gates
    assert report.depth == nl.depth
    assert report.area > 0
    assert report.leakage > 0
    assert sum(report.histogram.values()) == report.n_gates


def test_mapped_report_counts_nand_level_gates():
    nl, _ = build_agen(width=8)
    native = synthesize(nl, mapped=False)
    mapped = synthesize(nl, mapped=True)
    assert mapped.n_gates > native.n_gates
    assert mapped.name == native.name


def test_alu_is_the_largest_component():
    alu, _ = build_alu()
    agen, _ = build_agen()
    assert synthesize(alu).n_gates > synthesize(agen).n_gates


def test_library_storage_accounting():
    lib = default_library()
    assert lib.storage_area(10) == pytest.approx(10 * lib.dff.area)
    assert lib.storage_area(10, ram=True) < lib.storage_area(10)
    assert lib.storage_leakage(4, ram=True) == pytest.approx(
        4 * lib.ram_bit.leakage
    )


def test_component_magnitudes_comparable_to_paper():
    # Table 3: the paper's NAND-level counts are 189-4728 gates at depths
    # 15-46; our generated components must land within ~4x of that band
    from repro.circuits.builders import build_forward_check, build_issue_select

    for builder in (build_alu, build_agen, build_issue_select,
                    build_forward_check):
        nl, _ = builder()
        report = synthesize(nl, mapped=True)
        assert 100 <= report.n_gates <= 20000
        assert 5 <= report.depth <= 150
