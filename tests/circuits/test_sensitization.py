"""Sensitized-path commonality estimation."""

import pytest

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist
from repro.circuits.sensitization import (
    commonality,
    toggle_sets_per_pc,
    weighted_commonality,
)


def test_commonality_identical_sets():
    assert commonality([{1, 2, 3}, {1, 2, 3}]) == 1.0


def test_commonality_disjoint_sets():
    assert commonality([{1, 2}, {3, 4}]) == 0.0


def test_commonality_partial_overlap():
    assert commonality([{1, 2, 3}, {2, 3, 4}]) == pytest.approx(0.5)


def test_commonality_empty_union_is_one():
    assert commonality([set(), set()]) == 1.0


def test_commonality_requires_instances():
    with pytest.raises(ValueError):
        commonality([])


def test_weighted_commonality_uses_instance_counts():
    sets = {
        "hot": [{1, 2}] * 8,             # commonality 1.0, weight 8
        "cold": [{1, 2}, {3, 4}],        # commonality 0.0, weight 2
    }
    assert weighted_commonality(sets) == pytest.approx(0.8)


def test_weighted_commonality_skips_single_instance_pcs():
    sets = {"single": [{1}], "pair": [{1, 2}, {1, 2}]}
    assert weighted_commonality(sets) == 1.0


def test_weighted_commonality_requires_usable_pcs():
    with pytest.raises(ValueError):
        weighted_commonality({"single": [{1}]})


def test_toggle_sets_apply_predecessor_state_first():
    # a buffer chain: toggles happen exactly when prev != cur
    nl = Netlist()
    a = nl.add_input()
    out = nl.add_gate(GateType.BUF, [a])
    nl.mark_output(out)
    stream = [
        ("pc", [0], [1]),   # prev 0, cur 1: the buffer toggles
        ("pc", [1], [1]),   # no transition
        ("pc", [0], [1]),   # toggles again
    ]
    sets = toggle_sets_per_pc(nl, stream)
    assert sets["pc"][0] == {0}
    assert sets["pc"][1] == set()
    assert sets["pc"][2] == {0}


def test_identical_transitions_give_full_commonality():
    nl = Netlist()
    a, b = nl.add_input(), nl.add_input()
    nl.mark_output(nl.add_gate(GateType.XOR2, [a, b]))
    stream = [("pc", [0, 0], [1, 0])] * 5
    sets = toggle_sets_per_pc(nl, stream)
    assert weighted_commonality(sets) == 1.0
