"""Netlist construction, simulation, toggles, depth."""

import pytest

from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist


def _xor_netlist():
    nl = Netlist("xor")
    a = nl.add_input()
    b = nl.add_input()
    out = nl.add_gate(GateType.XOR2, [a, b])
    nl.mark_output(out)
    return nl


def test_simulate_combinational_function():
    nl = _xor_netlist()
    assert nl.simulate([0, 0]) == [0]
    assert nl.simulate([1, 0]) == [1]
    assert nl.simulate([1, 1]) == [0]


def test_input_count_enforced():
    nl = _xor_netlist()
    with pytest.raises(ValueError):
        nl.simulate([1])


def test_gate_arity_enforced():
    nl = Netlist()
    a = nl.add_input()
    with pytest.raises(ValueError):
        nl.add_gate(GateType.AND2, [a])


def test_unknown_net_rejected():
    nl = Netlist()
    with pytest.raises(ValueError):
        nl.add_gate(GateType.INV, [99])
    with pytest.raises(ValueError):
        nl.mark_output(99)


def test_const_nets():
    nl = Netlist()
    a = nl.add_input()
    nl.mark_output(nl.add_gate(GateType.AND2, [a, nl.const1]))
    nl.mark_output(nl.add_gate(GateType.OR2, [a, nl.const0]))
    assert nl.simulate([1]) == [1, 1]
    assert nl.simulate([0]) == [0, 0]


def test_toggle_tracking_between_vectors():
    nl = _xor_netlist()
    nl.simulate([0, 0])
    _, toggled = nl.simulate([1, 0], track_toggles=True)
    assert toggled == {0}  # the single XOR gate changed output
    _, toggled = nl.simulate([0, 1], track_toggles=True)
    assert toggled == set()  # output stayed 1


def test_depth_counts_longest_path():
    nl = Netlist()
    a = nl.add_input()
    x = nl.add_gate(GateType.INV, [a])
    y = nl.add_gate(GateType.INV, [x])
    z = nl.add_gate(GateType.AND2, [a, y])  # depth 3 through inverters
    nl.mark_output(z)
    assert nl.depth == 3
    assert nl.n_gates == 3


def test_empty_netlist_depth_zero():
    assert Netlist().depth == 0


def test_read_bus():
    nl = Netlist()
    bits = nl.add_inputs(4)
    for b in bits:
        nl.mark_output(nl.add_gate(GateType.BUF, [b]))
    nl.simulate([1, 0, 1, 0])
    assert nl.read_bus(bits) == 0b0101


def test_gate_histogram():
    nl = _xor_netlist()
    nl.add_gate(GateType.XOR2, [nl.inputs[0], nl.inputs[1]])
    nl.add_gate(GateType.INV, [nl.inputs[0]])
    hist = nl.gate_histogram()
    assert hist[GateType.XOR2] == 2
    assert hist[GateType.INV] == 1


def test_state_persists_between_calls():
    nl = Netlist()
    a = nl.add_input()
    out = nl.add_gate(GateType.BUF, [a])
    nl.mark_output(out)
    nl.simulate([1])
    _, toggled = nl.simulate([1], track_toggles=True)
    assert toggled == set()  # no change: state was retained
