"""Property-based checks of builder families across widths."""

from hypothesis import given, settings, strategies as st

from repro.circuits.builders import (
    build_agen,
    build_forward_check,
    build_incrementer,
    build_issue_select,
    carry_lookahead_adder,
    ripple_carry_adder,
)
from repro.circuits.netlist import Netlist


def _bits(value, width):
    return [(value >> i) & 1 for i in range(width)]


def _bus(outputs):
    return sum(bit << i for i, bit in enumerate(outputs))


@given(width=st.integers(min_value=1, max_value=12),
       data=st.data())
@settings(max_examples=40, deadline=None)
def test_adders_correct_at_any_width(width, data):
    a = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    b = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    for builder in (ripple_carry_adder, carry_lookahead_adder):
        nl = Netlist()
        sums, cout = builder(nl, nl.add_inputs(width), nl.add_inputs(width))
        for net in sums:
            nl.mark_output(net)
        nl.mark_output(cout)
        out = nl.simulate(_bits(a, width) + _bits(b, width))
        assert _bus(out[:width]) == (a + b) % (1 << width)
        assert out[width] == (a + b) >> width


@given(width=st.integers(min_value=1, max_value=10),
       value=st.integers(min_value=0))
@settings(max_examples=40, deadline=None)
def test_incrementer_any_width(width, value):
    value %= 1 << width
    nl, _ = build_incrementer(width)
    out = nl.simulate(_bits(value, width))
    assert _bus(out) == (value + 1) % (1 << width)


@given(n_requests=st.integers(min_value=2, max_value=12),
       n_grants=st.integers(min_value=1, max_value=4),
       requests=st.integers(min_value=0))
@settings(max_examples=40, deadline=None)
def test_select_grants_are_one_hot_and_disjoint(n_requests, n_grants,
                                                requests):
    requests %= 1 << n_requests
    nl, _ = build_issue_select(n_requests, n_grants)
    out = nl.simulate(_bits(requests, n_requests))
    grants = [
        out[i * n_requests:(i + 1) * n_requests] for i in range(n_grants)
    ]
    granted = set()
    for grant in grants:
        assert sum(grant) <= 1  # one-hot or empty
        for idx, bit in enumerate(grant):
            if bit:
                assert idx not in granted  # grants never collide
                assert (requests >> idx) & 1  # only real requests granted
                granted.add(idx)
    expected = min(n_grants, bin(requests).count("1"))
    assert len(granted) == expected


@given(width=st.integers(min_value=4, max_value=16),
       base=st.integers(min_value=0),
       offset=st.integers(min_value=0))
@settings(max_examples=40, deadline=None)
def test_agen_any_width(width, base, offset):
    base %= 1 << width
    offset %= 1 << width
    nl, _ = build_agen(width)
    out = nl.simulate(_bits(base, width) + _bits(offset, width))
    assert _bus(out[:width]) == (base + offset) % (1 << width)


@given(tag=st.integers(min_value=0, max_value=15))
@settings(max_examples=20, deadline=None)
def test_forward_check_multi_producer_or(tag):
    # two producers, two consumer sources (width * n_srcs): the per-source
    # forward signal is the OR over producer matches
    nl, _ = build_forward_check(width=2, n_srcs=1, tag_bits=4)
    vec = (
        _bits(tag, 4) + _bits(tag ^ 0xF, 4)   # producer tags
        + [1, 1]                              # both valid
        + _bits(tag, 4)                       # source 0: matches producer 0
        + _bits(tag ^ 0xF, 4)                 # source 1: matches producer 1
    )
    out = nl.simulate(vec)
    # per source: [match_p0, match_p1, forward]
    src0, src1 = out[:3], out[3:6]
    assert src0 == [1, 0, 1]
    assert src1 == [0, 1, 1]
