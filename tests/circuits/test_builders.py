"""Functional correctness of the netlist builders (property-based)."""

from hypothesis import given, settings, strategies as st

from repro.circuits.builders import (
    build_agen,
    build_alu,
    build_forward_check,
    build_incrementer,
    build_issue_select,
    build_match_counter,
    build_threshold_compare,
    carry_lookahead_adder,
    ripple_carry_adder,
)
from repro.circuits.netlist import Netlist

U32 = st.integers(min_value=0, max_value=(1 << 32) - 1)
MASK = (1 << 32) - 1


def _bits(value, width):
    return [(value >> i) & 1 for i in range(width)]


def _bus(outputs):
    return sum(bit << i for i, bit in enumerate(outputs))


def _adder_netlist(builder):
    nl = Netlist()
    a = nl.add_inputs(32)
    b = nl.add_inputs(32)
    sums, cout = builder(nl, a, b)
    for net in sums:
        nl.mark_output(net)
    nl.mark_output(cout)
    return nl


@given(U32, U32)
@settings(max_examples=60, deadline=None)
def test_ripple_carry_adder_matches_integer_addition(a, b):
    nl = _adder_netlist(ripple_carry_adder)
    out = nl.simulate(_bits(a, 32) + _bits(b, 32))
    assert _bus(out[:32]) == (a + b) & MASK
    assert out[32] == ((a + b) >> 32) & 1


@given(U32, U32)
@settings(max_examples=60, deadline=None)
def test_cla_matches_integer_addition(a, b):
    nl = _adder_netlist(carry_lookahead_adder)
    out = nl.simulate(_bits(a, 32) + _bits(b, 32))
    assert _bus(out[:32]) == (a + b) & MASK


def test_cla_is_shallower_than_ripple():
    assert (
        _adder_netlist(carry_lookahead_adder).depth
        < _adder_netlist(ripple_carry_adder).depth
    )


@given(U32, U32, st.integers(min_value=0, max_value=7))
@settings(max_examples=60, deadline=None)
def test_alu_matches_reference(a, b, op):
    nl, _ = build_alu()
    out = nl.simulate(_bits(a, 32) + _bits(b, 32) + _bits(op, 3))
    sh = b & 31
    reference = {
        0: (a + b) & MASK,
        1: (a - b) & MASK,
        2: a & b,
        3: a | b,
        4: a ^ b,
        5: (a >> sh) & MASK,
        6: (a << sh) & MASK,
        7: (a + b) & MASK,
    }[op]
    assert _bus(out) == reference


@given(U32, U32)
@settings(max_examples=60, deadline=None)
def test_agen_computes_effective_address(base, offset):
    nl, _ = build_agen()
    out = nl.simulate(_bits(base, 32) + _bits(offset, 32))
    assert _bus(out[:32]) == (base + offset) & MASK


@given(st.lists(st.booleans(), min_size=16, max_size=16))
@settings(max_examples=60, deadline=None)
def test_select_grants_highest_priority_requests(requests):
    nl, _ = build_issue_select(16, 4)
    out = nl.simulate([int(r) for r in requests])
    grants = [out[i * 16:(i + 1) * 16] for i in range(4)]
    expected = [i for i, r in enumerate(requests) if r][:4]
    for rank, grant in enumerate(grants):
        want = [0] * 16
        if rank < len(expected):
            want[expected[rank]] = 1
        assert grant == want


@given(st.integers(min_value=0, max_value=127),
       st.integers(min_value=0, max_value=127))
@settings(max_examples=40, deadline=None)
def test_forward_check_matches_tags(prod_tag, src_tag):
    nl, ports = build_forward_check(width=1, n_srcs=1, tag_bits=7)
    vec = _bits(prod_tag, 7) + [1] + _bits(src_tag, 7)
    out = nl.simulate(vec)
    match, forward = out
    assert match == int(prod_tag == src_tag)
    assert forward == match


def test_forward_check_respects_valid_bit():
    nl, _ = build_forward_check(width=1, n_srcs=1, tag_bits=7)
    vec = _bits(42, 7) + [0] + _bits(42, 7)
    assert nl.simulate(vec) == [0, 0]


@given(st.integers(min_value=0, max_value=(1 << 32) - 1))
@settings(max_examples=60, deadline=None)
def test_match_counter_is_popcount(lines):
    nl, _ = build_match_counter(32)
    out = nl.simulate(_bits(lines, 32))
    assert _bus(out) == bin(lines).count("1")


@given(st.integers(min_value=0, max_value=63),
       st.integers(min_value=1, max_value=63))
@settings(max_examples=60, deadline=None)
def test_threshold_compare(count, threshold):
    nl, _ = build_threshold_compare(6, threshold)
    out = nl.simulate(_bits(count, 6))
    assert out[0] == int(count >= threshold)


@given(st.integers(min_value=0, max_value=63))
@settings(max_examples=30, deadline=None)
def test_incrementer_wraps_modulo(value):
    nl, _ = build_incrementer(6)
    out = nl.simulate(_bits(value, 6))
    assert _bus(out) == (value + 1) % 64
