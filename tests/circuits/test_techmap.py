"""Technology mapping: functional equivalence and cell subset."""

import random

import pytest

from repro.circuits.builders import (
    build_agen,
    build_forward_check,
    build_incrementer,
    build_issue_select,
    tech_map,
)
from repro.circuits.gates import GateType

_ALLOWED = {GateType.NAND2, GateType.NOR2, GateType.INV}


@pytest.mark.parametrize("builder,kwargs", [
    (build_agen, {"width": 8}),
    (build_issue_select, {"n_requests": 8, "n_grants": 2}),
    (build_forward_check, {"width": 2, "n_srcs": 1, "tag_bits": 4}),
    (build_incrementer, {"bits": 6}),
])
def test_mapped_netlist_is_equivalent(builder, kwargs):
    original, _ = builder(**kwargs)
    mapped = tech_map(original)
    assert {g.gtype for g in mapped.gates} <= _ALLOWED
    rng = random.Random(11)
    for _ in range(50):
        vector = [rng.randint(0, 1) for _ in original.inputs]
        assert original.simulate(vector) == mapped.simulate(vector)


def test_mapping_preserves_port_counts():
    original, _ = build_agen(width=8)
    mapped = tech_map(original)
    assert len(mapped.inputs) == len(original.inputs)
    assert len(mapped.outputs) == len(original.outputs)


def test_mapping_increases_gate_count():
    original, _ = build_agen(width=8)
    assert tech_map(original).n_gates > original.n_gates
