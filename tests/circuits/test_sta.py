"""Static timing analysis and Monte-Carlo delay."""

import pytest

from repro.circuits.builders import build_agen, carry_lookahead_adder, ripple_carry_adder
from repro.circuits.gates import GateType
from repro.circuits.library import default_library
from repro.circuits.netlist import Netlist
from repro.circuits.sta import critical_path, monte_carlo_delay
from repro.faults.variation import ProcessVariationModel


def _chain(n):
    nl = Netlist()
    net = nl.add_input()
    for _ in range(n):
        net = nl.add_gate(GateType.INV, [net])
    nl.mark_output(net)
    return nl


def test_chain_delay_is_sum_of_gate_delays():
    lib = default_library()
    delay, path = critical_path(_chain(5), lib)
    assert delay == pytest.approx(5 * lib.gate_delay(GateType.INV))
    assert len(path) == 5


def test_path_indices_are_in_order():
    _, path = critical_path(_chain(4), default_library())
    assert path == sorted(path)


def test_requires_outputs():
    nl = Netlist()
    nl.add_input()
    with pytest.raises(ValueError):
        critical_path(nl, default_library())


def test_cla_faster_than_ripple():
    lib = default_library()

    def adder_delay(builder):
        nl = Netlist()
        a = nl.add_inputs(32)
        b = nl.add_inputs(32)
        sums, cout = builder(nl, a, b)
        for net in sums:
            nl.mark_output(net)
        nl.mark_output(cout)
        return critical_path(nl, lib)[0]

    assert adder_delay(carry_lookahead_adder) < adder_delay(ripple_carry_adder)


def test_factors_scale_delay():
    lib = default_library()
    nl = _chain(3)
    nominal, _ = critical_path(nl, lib)
    scaled, _ = critical_path(nl, lib, factors=[2.0] * nl.n_gates)
    assert scaled == pytest.approx(2 * nominal)


def test_monte_carlo_distribution():
    nl, _ = build_agen(width=8)
    variation = ProcessVariationModel(deviation=0.2, seed=4)
    delays, mu, sigma = monte_carlo_delay(
        nl, default_library(), variation, n_samples=48
    )
    nominal, _ = critical_path(nl, default_library())
    assert len(delays) == 48
    assert sigma > 0
    assert mu == pytest.approx(nominal, rel=0.15)


def test_monte_carlo_rejects_zero_samples():
    nl = _chain(2)
    with pytest.raises(ValueError):
        monte_carlo_delay(
            nl, default_library(), ProcessVariationModel(), n_samples=0
        )


def test_monte_carlo_sigma_grows_with_variation():
    nl = _chain(20)
    lib = default_library()
    _, _, narrow = monte_carlo_delay(
        nl, lib, ProcessVariationModel(deviation=0.05, seed=1), 48
    )
    _, _, wide = monte_carlo_delay(
        nl, lib, ProcessVariationModel(deviation=0.30, seed=1), 48
    )
    assert wide > narrow
