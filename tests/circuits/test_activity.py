"""Activity-based dynamic power."""

import random

import pytest

from repro.circuits.activity import compare_activity, measure_activity
from repro.circuits.builders import build_agen
from repro.circuits.gates import GateType
from repro.circuits.netlist import Netlist


def _bits(value, width):
    return [(value >> i) & 1 for i in range(width)]


def _inv_chain(n=4):
    nl = Netlist("chain")
    net = nl.add_input()
    for _ in range(n):
        net = nl.add_gate(GateType.INV, [net])
    nl.mark_output(net)
    return nl


def test_constant_input_stops_toggling():
    nl = _inv_chain()
    report = measure_activity(nl, [[1]] + [[1]] * 9)
    # only the settling of the first vector toggles anything
    assert report.total_toggles <= nl.n_gates
    assert report.mean_activity < 0.2


def test_alternating_input_toggles_every_gate_every_vector():
    nl = _inv_chain()
    vectors = [[i % 2] for i in range(1, 11)]
    report = measure_activity(nl, vectors)
    # after the first vector every gate flips on every subsequent vector
    assert report.mean_activity > 0.8
    assert report.energy > 0


def test_energy_weights_cell_type():
    # an XOR toggle costs more than an inverter toggle
    inv = Netlist("inv")
    a = inv.add_input()
    inv.mark_output(inv.add_gate(GateType.INV, [a]))
    xor = Netlist("xor")
    a2, b2 = xor.add_input(), xor.add_input()
    xor.mark_output(xor.add_gate(GateType.XOR2, [a2, b2]))
    vec_inv = [[i % 2] for i in range(10)]
    vec_xor = [[i % 2, 0] for i in range(10)]
    assert (
        measure_activity(xor, vec_xor).energy
        > measure_activity(inv, vec_inv).energy
    )


def test_hottest_ranks_by_toggle_count():
    nl = _inv_chain(3)
    report = measure_activity(nl, [[i % 2] for i in range(8)])
    hottest = report.hottest(2)
    assert len(hottest) == 2
    assert hottest[0][1] >= hottest[1][1]


def test_local_operands_switch_less_than_random():
    netlist, _ = build_agen(width=16)
    rng = random.Random(0)
    base = rng.randrange(1 << 16)
    local = [
        _bits(base, 16) + _bits(8 * i, 16) for i in range(30)
    ]
    netlist2, _ = build_agen(width=16)
    rand = [
        _bits(rng.randrange(1 << 16), 16) + _bits(rng.randrange(1 << 16), 16)
        for _ in range(30)
    ]
    _, _, ratio = compare_activity(netlist, local, rand)
    del netlist2
    assert ratio > 1.3  # random operands burn measurably more energy


def test_compare_requires_switching():
    nl = _inv_chain()
    with pytest.raises(ValueError):
        compare_activity(nl, [], [[1]])


def test_empty_stream_report():
    report = measure_activity(_inv_chain(), [])
    assert report.n_vectors == 0
    assert report.energy_per_vector == 0.0
    assert report.mean_activity == 0.0
