"""Shared fixtures: small programs, cores, and fault stacks."""

import pytest

from repro.core.schemes import SchemeKind, make_scheme
from repro.core.tep import TimingErrorPredictor
from repro.faults.sensors import VoltageSensor
from repro.faults.timing import StageTimingModel, VoltageScaling
from repro.faults.variation import ProcessVariationModel
from repro.isa.instruction import StaticInst
from repro.isa.opcodes import OpClass
from repro.isa.program import BasicBlock, Program
from repro.mem.hierarchy import MemoryHierarchy
from repro.uarch.config import CoreConfig
from repro.uarch.pipeline import OoOCore
from repro.workloads.trace import TraceGenerator


def make_linear_program(n_blocks=4, block_len=5, loop=True):
    """A deterministic program: independent ALU chains, looping blocks."""
    blocks = []
    pc = 0x1000
    for b in range(n_blocks):
        insts = []
        for i in range(block_len - 1):
            insts.append(
                StaticInst(pc, OpClass.IALU, dest=(i % 8) + 1, srcs=())
            )
            pc += 4
        insts.append(StaticInst(pc, OpClass.BRANCH, srcs=(), taken_prob=0.0))
        pc += 4
        if loop:
            successors = [((b + 1) % n_blocks, 1.0)]
        elif b + 1 < n_blocks:
            successors = [(b + 1, 1.0)]
        else:
            successors = []  # program ends: the trace is finite
        blocks.append(BasicBlock(b, insts, successors))
    return Program(blocks, name="linear")


@pytest.fixture
def linear_program():
    return make_linear_program()


def make_core(program=None, scheme=SchemeKind.FAULT_FREE, injector=None,
              vdd=1.10, seed=0, config=None, tep=None):
    """Assemble a small core over a trace of ``program``."""
    program = program or make_linear_program()
    trace = TraceGenerator(program, seed=seed)
    scheme_obj = make_scheme(scheme)
    if scheme_obj.uses_tep and tep is None:
        tep = TimingErrorPredictor()
    sensor = VoltageSensor(vdd)
    core = OoOCore(
        config or CoreConfig.core1(),
        trace,
        MemoryHierarchy(),
        scheme_obj,
        injector=injector,
        tep=tep,
        sensor=sensor,
        vdd=vdd,
    )
    core.program = program
    return core


@pytest.fixture
def timing_model():
    return StageTimingModel(VoltageScaling(), ProcessVariationModel(seed=3))
