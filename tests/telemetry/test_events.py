"""Event bus: ring bounds, subscriptions, JSONL export."""

import json

import pytest

from repro.telemetry.events import EventBus, events_to_jsonl


def test_bus_records_in_order():
    bus = EventBus(capacity=16)
    bus.emit(1, "fault", stage="EXECUTE")
    bus.emit(2, "replay", seq=7)
    assert bus.events() == [
        (1, "fault", {"stage": "EXECUTE"}),
        (2, "replay", {"seq": 7}),
    ]
    assert bus.emitted == 2
    assert bus.dropped == 0
    assert bus.counts() == {"fault": 1, "replay": 1}


def test_ring_evicts_oldest_and_counts_drops():
    bus = EventBus(capacity=3)
    for cycle in range(5):
        bus.emit(cycle, "retire", seq=cycle)
    events = bus.events()
    assert len(events) == 3
    assert [c for c, _, _ in events] == [2, 3, 4]  # oldest evicted
    assert bus.emitted == 5
    assert bus.dropped == 2


def test_subscribers_see_every_event_despite_eviction():
    bus = EventBus(capacity=2)
    seen = []
    bus.subscribe("retire", lambda c, n, p: seen.append(p["seq"]))
    for cycle in range(10):
        bus.emit(cycle, "retire", seq=cycle)
        bus.emit(cycle, "fault", stage="MEM")  # different name: not seen
    assert seen == list(range(10))


def test_bus_rejects_bad_capacity():
    with pytest.raises(ValueError):
        EventBus(capacity=0)


def test_jsonl_export_is_deterministic_and_parseable():
    bus = EventBus()
    bus.emit(3, "fault", stage="EXECUTE", tolerated=True)
    bus.emit(5, "retire", seq=1, pc=64)
    text = events_to_jsonl(bus.events())
    assert text == events_to_jsonl(bus.events())
    lines = text.splitlines()
    assert json.loads(lines[0]) == {
        "ts": 3, "ev": "fault", "stage": "EXECUTE", "tolerated": True
    }
    assert json.loads(lines[1]) == {"ts": 5, "ev": "retire", "seq": 1,
                                    "pc": 64}
    assert text.endswith("\n")
    assert events_to_jsonl([]) == ""
