"""Interval metrics: registry, series algebra, sampler windows."""

import pytest

from repro.telemetry.metrics import (
    IntervalSampler,
    MetricsRegistry,
    MetricsSeries,
    default_registry,
)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_column_order():
    reg = MetricsRegistry()
    reg.counter("a", lambda core: 0)
    reg.gauge("g", lambda core: 0)
    reg.derived("d", lambda w: 0.0)
    assert reg.columns() == ["cycle", "cycles", "a", "g", "d"]


def test_default_registry_has_headline_columns():
    columns = default_registry().columns()
    for name in ("committed", "faults", "replays", "rob_occ", "lsq_occ",
                 "ipc", "iq_occ", "fault_rate", "replay_rate",
                 "stall_rate", "tep_hit_rate", "tep_false_rate"):
        assert name in columns


def test_sampler_rejects_bad_interval():
    with pytest.raises(ValueError):
        IntervalSampler(interval=0)


# ----------------------------------------------------------------------
# series
# ----------------------------------------------------------------------
def _series(rows, columns=("cycle", "cycles", "committed", "ipc")):
    return MetricsSeries(100, columns, rows)


def test_series_roundtrip_and_json_determinism():
    s = _series([[100, 100, 150, 1.5], [200, 100, 90, 0.9]])
    again = MetricsSeries.from_dict(s.to_dict())
    assert again.to_dict() == s.to_dict()
    assert again.to_json() == s.to_json()


def test_series_csv_header_and_rows():
    s = _series([[100, 100, 150, 1.5]])
    lines = s.to_csv().splitlines()
    assert lines[0] == "cycle,cycles,committed,ipc"
    assert lines[1] == "100,100,150,1.5"


def test_series_summary_min_mean_max():
    s = _series([[100, 100, 150, 1.5], [200, 100, 90, 0.5]])
    summary = s.summary(names=("ipc",))
    assert summary["windows"] == 2
    assert summary["interval"] == 100
    assert summary["ipc"] == {"min": 0.5, "mean": 1.0, "max": 1.5}


def test_merge_averages_and_passes_through_cycle_axis():
    a = _series([[100, 100, 150, 1.5], [200, 100, 90, 0.9]])
    b = _series([[100, 100, 50, 0.5], [200, 100, 110, 1.1]])
    merged = MetricsSeries.merge([a, b])
    assert merged.n_merged == 2
    assert merged.column("cycle") == [100, 200]  # from the first series
    assert merged.column("committed") == [100.0, 100.0]
    assert merged.column("ipc") == [1.0, 1.0]


def test_merge_truncates_to_shortest_and_skips_none():
    a = _series([[100, 100, 150, 1.5], [200, 100, 90, 0.9]])
    b = _series([[100, 100, 50, 0.5]])
    merged = MetricsSeries.merge([a, None, b])
    assert len(merged) == 1
    assert MetricsSeries.merge([]) is None
    assert MetricsSeries.merge([None]) is None


# ----------------------------------------------------------------------
# sampler on a real core
# ----------------------------------------------------------------------
def test_sampler_windows_partition_the_run():
    from repro.harness.runner import RunSpec, run_one
    from repro.telemetry import TelemetryConfig

    result = run_one(RunSpec(
        "bzip2", "CDS", 0.97, n_instructions=1500, warmup=300, seed=4,
        telemetry=TelemetryConfig(metrics=True, interval=200),
    ))
    series = result.telemetry.metrics
    assert len(series) >= 2
    # window deltas partition the measured run exactly: no cycle or
    # commit is counted twice or lost, including the partial tail window
    assert sum(series.column("cycles")) == result.stats.cycles
    assert sum(series.column("committed")) == result.stats.committed
    assert sum(series.column("faults")) == result.stats.faults_total
    # full windows span the nominal interval
    for cycles in series.column("cycles")[:-1]:
        assert cycles == 200
