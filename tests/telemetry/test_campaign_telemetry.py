"""Campaign integration: journaled summaries and report aggregation."""

import json
import os

import pytest

from repro.campaign import CampaignSpec, run_campaign
from repro.campaign.report import build_report

_FAST = dict(n_instructions=1200, warmup=300, seeds=[1, 2])


def _spec(**kw):
    knobs = dict(_FAST, telemetry_interval=200)
    knobs.update(kw)
    return CampaignSpec("telem", ["bzip2"], ["CDS"], **knobs)


def test_spec_roundtrips_telemetry_interval():
    spec = _spec()
    again = CampaignSpec.from_dict(spec.to_dict())
    assert again.telemetry_interval == 200
    assert again.to_dict() == spec.to_dict()


def test_pair_specs_attach_telemetry_to_scheme_run_only():
    spec = _spec()
    run_spec, base_spec = spec.pair_specs(spec.points()[0], 0)
    assert run_spec.telemetry is not None
    assert run_spec.telemetry.interval == 200
    assert run_spec.telemetry.events is False
    assert base_spec.telemetry is None  # baseline cache entries stay shared
    off_run, _ = _spec(telemetry_interval=0).pair_specs(spec.points()[0], 0)
    assert off_run.telemetry is None


def test_campaign_journals_and_reports_telemetry(tmp_path):
    report = run_campaign(tmp_path, spec=_spec(), cache=False)
    point = report["points"][0]
    telem = point["telemetry"]
    assert telem["draws"] == 2
    assert telem["interval"] == 200
    for name in ("ipc", "fault_rate", "replay_rate"):
        entry = telem[name]
        assert entry["min"] <= entry["mean"] <= entry["max"]
    # every journaled draw carries its own summary
    with open(os.path.join(tmp_path, "journal.jsonl")) as fh:
        events = [json.loads(line) for line in fh]
    runs = [e for e in events if e.get("event") == "run"]
    assert len(runs) == 2
    assert all("telemetry" in r for r in runs)
    # the markdown surfaces the pooled numbers
    with open(os.path.join(tmp_path, "report.md")) as fh:
        md = fh.read()
    assert "Interval telemetry" in md
    assert "bzip2/CDS" in md
    # report rebuild from the journal is exact (resume-safe)
    assert build_report(tmp_path) == report


def test_pooled_telemetry_sums_dropped_events_scalar():
    from repro.campaign.report import _pool_telemetry

    summaries = [
        {"draws": 1, "interval": 200, "windows": 4,
         "ipc": {"min": 0.8, "mean": 1.0, "max": 1.2},
         "dropped_events": 2},
        {"draws": 1, "interval": 200, "windows": 4,
         "ipc": {"min": 0.9, "mean": 1.1, "max": 1.3},
         "dropped_events": 3},
    ]
    pooled = _pool_telemetry(summaries)
    assert pooled["dropped_events"] == 5  # totalled, not enveloped
    assert pooled["ipc"] == {"min": 0.8, "mean": 1.05, "max": 1.3}
    # campaigns run with events off journal no dropped_events key at
    # all — pooling must not invent one
    for summary in summaries:
        del summary["dropped_events"]
    assert "dropped_events" not in _pool_telemetry(summaries)


def test_campaign_without_telemetry_is_unchanged(tmp_path):
    report = run_campaign(
        tmp_path, spec=_spec(telemetry_interval=0), cache=False
    )
    assert "telemetry" not in report["points"][0]
    with open(os.path.join(tmp_path, "report.md")) as fh:
        assert "Interval telemetry" not in fh.read()
