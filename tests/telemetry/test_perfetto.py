"""Perfetto exporter: trace_event schema validity and track layout."""

import json

import pytest

from repro.harness.runner import RunSpec, run_one
from repro.telemetry import (
    TelemetryConfig,
    to_perfetto,
    validate_trace,
    write_perfetto,
)


@pytest.fixture(scope="module")
def traced_run():
    return run_one(RunSpec(
        "bzip2", "CDS", 0.97, n_instructions=1200, warmup=300, seed=2,
        telemetry=TelemetryConfig(metrics=True, interval=200, events=True),
    ))


def test_real_run_trace_validates_clean(traced_run):
    telem = traced_run.telemetry
    trace = to_perfetto(telem.events, series=telem.metrics)
    assert validate_trace(trace) == []
    # every retired instruction contributes at least one stage slice
    slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert len(slices) >= telem.event_counts["retire"]


def test_trace_has_named_tracks_and_counters(traced_run):
    telem = traced_run.telemetry
    trace = to_perfetto(telem.events, series=telem.metrics)
    names = {
        e["args"]["name"] for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert {"stage:fetch", "stage:issue", "mechanisms", "recovery"} <= names
    counters = {e["name"] for e in trace["traceEvents"] if e["ph"] == "C"}
    assert "ipc" in counters and "fault_rate" in counters


def test_faulty_instructions_are_colored(traced_run):
    telem = traced_run.telemetry
    trace = to_perfetto(telem.events)
    cnames = {e.get("cname") for e in trace["traceEvents"]
              if e["ph"] == "X"}
    assert "terrible" in cnames  # CDS at 0.97 V does fault


def test_write_perfetto_is_deterministic_json(tmp_path, traced_run):
    telem = traced_run.telemetry
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    write_perfetto(a, telem.events, series=telem.metrics)
    write_perfetto(b, telem.events, series=telem.metrics)
    assert a.read_bytes() == b.read_bytes()
    assert validate_trace(json.loads(a.read_text())) == []


def test_validate_trace_catches_malformed_documents():
    assert validate_trace([]) == ["top level is not a JSON object"]
    assert validate_trace({}) == ["missing traceEvents list"]
    assert validate_trace({"traceEvents": []}) == ["traceEvents is empty"]
    bad_ts = {"traceEvents": [
        {"ph": "X", "pid": 1, "tid": 1, "name": "n", "ts": -3, "dur": 1},
    ]}
    assert any("bad ts" in p for p in validate_trace(bad_ts))
    no_dur = {"traceEvents": [
        {"ph": "X", "pid": 1, "tid": 1, "name": "n", "ts": 0},
    ]}
    assert any("bad dur" in p for p in validate_trace(no_dur))
    missing = {"traceEvents": [{"ph": "i", "ts": 0}]}
    assert any("missing keys" in p for p in validate_trace(missing))
