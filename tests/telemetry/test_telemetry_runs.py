"""End-to-end telemetry: determinism, caching, storm transients, profiling."""

import pytest

from repro.harness.parallel import collect_series, run_many
from repro.harness.runner import RunSpec, run_one
from repro.telemetry import TelemetryConfig
from repro.telemetry.events import events_to_jsonl

_FAST = dict(n_instructions=1000, warmup=300)
_TELEM = dict(metrics=True, interval=200, events=True)


def _spec(seed=2, **telemetry):
    knobs = dict(_TELEM, **telemetry) if telemetry else dict(_TELEM)
    return RunSpec("bzip2", "CDS", 0.97, seed=seed, **_FAST,
                   telemetry=TelemetryConfig(**knobs))


def _fingerprint(telem):
    return (telem.metrics.to_json(), events_to_jsonl(telem.events),
            telem.events_emitted, telem.events_dropped)


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def test_identical_specs_yield_byte_identical_telemetry():
    a = run_one(_spec()).telemetry
    b = run_one(_spec()).telemetry
    assert _fingerprint(a) == _fingerprint(b)


def test_parallel_fanout_matches_serial():
    specs = [_spec(seed=s) for s in (1, 2, 3)]
    serial = [run_one(spec).telemetry for spec in specs]
    fanned = run_many([_spec(seed=s) for s in (1, 2, 3)], jobs=2)
    for expect, result in zip(serial, fanned):
        assert _fingerprint(expect) == _fingerprint(result.telemetry)


def test_cache_hit_returns_identical_telemetry(tmp_path):
    first = run_many([_spec()], cache=True, cache_dir=tmp_path)[0]
    again = run_many([_spec()], cache=True, cache_dir=tmp_path)[0]
    assert _fingerprint(first.telemetry) == _fingerprint(again.telemetry)


def test_spec_key_distinguishes_telemetry_config():
    bare = RunSpec("bzip2", "CDS", 0.97, seed=2, **_FAST)
    keys = {
        bare.key(),
        _spec().key(),
        _spec(interval=100).key(),
        _spec(events=False).key(),
        _spec(profile=True).key(),
    }
    assert len(keys) == 5  # each config is its own cache entry


def test_telemetry_survives_pickle():
    import pickle

    telem = run_one(_spec()).telemetry
    clone = pickle.loads(pickle.dumps(telem))
    assert _fingerprint(clone) == _fingerprint(telem)
    assert clone.event_counts == telem.event_counts


# ----------------------------------------------------------------------
# opt-in boundaries
# ----------------------------------------------------------------------
def test_disabled_telemetry_collects_nothing():
    result = run_one(RunSpec("bzip2", "CDS", 0.97, seed=2, **_FAST))
    assert result.telemetry is None


def test_all_off_config_collects_nothing():
    spec = RunSpec("bzip2", "CDS", 0.97, seed=2, **_FAST,
                   telemetry=TelemetryConfig(metrics=False, events=False))
    assert run_one(spec).telemetry is None


def test_telemetry_does_not_perturb_simulation():
    bare = run_one(RunSpec("bzip2", "CDS", 0.97, seed=2, **_FAST))
    traced = run_one(_spec(profile=True))
    assert bare.stats.as_dict() == traced.stats.as_dict()


def test_event_ring_drops_oldest_but_counts_all():
    telem = run_one(_spec(event_capacity=64)).telemetry
    assert len(telem.events) == 64
    assert telem.events_dropped == telem.events_emitted - 64
    assert telem.events_dropped > 0
    # the ring keeps the newest tail
    cycles = [cycle for cycle, _, _ in telem.events]
    assert cycles == sorted(cycles)


def test_dropped_events_surface_in_stats_and_summary():
    # silent trace truncation made loud: the tally rides both the
    # exported SimStats dict and the journaled telemetry summary
    result = run_one(_spec(event_capacity=64))
    telem = result.telemetry
    assert telem.events_dropped > 0
    assert result.stats.as_dict()["dropped_events"] == telem.events_dropped
    assert telem.summary()["dropped_events"] == telem.events_dropped


def test_summary_without_event_tracing_omits_dropped_key():
    telem = run_one(_spec(events=False)).telemetry
    summary = telem.summary()
    assert "dropped_events" not in summary  # no ring ran, nothing to drop
    assert summary["windows"] > 0


def test_untraced_run_exports_zero_dropped_events():
    result = run_one(RunSpec("bzip2", "CDS", 0.97, seed=2, **_FAST))
    assert result.stats.as_dict()["dropped_events"] == 0


# ----------------------------------------------------------------------
# batch pooling
# ----------------------------------------------------------------------
def test_collect_series_pools_across_results():
    results = run_many([_spec(seed=s) for s in (1, 2)])
    merged = collect_series(results)
    assert merged.n_merged == 2
    assert len(merged) >= 2
    bare = run_one(RunSpec("bzip2", "CDS", 0.97, seed=9, **_FAST))
    assert collect_series([bare]) is None


# ----------------------------------------------------------------------
# storm transients (the paper's recovery story, now visible)
# ----------------------------------------------------------------------
def test_interval_metrics_show_storm_ipc_dip_and_recovery():
    from repro.faults.storm import default_storm

    spec = RunSpec(
        "bzip2", "CDS", 0.97, n_instructions=4000, warmup=500, seed=1,
        storm=default_storm(),
        telemetry=TelemetryConfig(metrics=True, interval=200),
    )
    ipc = run_one(spec).telemetry.metrics.column("ipc")
    assert len(ipc) >= 10
    threshold = 0.6 * max(ipc)
    dips = [i for i, v in enumerate(ipc) if v < threshold]
    # the burst windows visibly crater throughput...
    assert dips
    # ...and the machine recovers after the first burst passes
    assert any(v >= threshold for v in ipc[dips[0] + 1:])


# ----------------------------------------------------------------------
# self-profiling
# ----------------------------------------------------------------------
def test_profiler_reports_stage_accounting():
    telem = run_one(_spec(profile=True)).telemetry
    profile = telem.profile
    assert profile["wall_seconds"] > 0
    stages = profile["stages"]
    assert set(stages) == {"fetch", "dispatch", "select", "commit", "events"}
    for entry in stages.values():
        assert entry["calls"] > 0
        assert entry["seconds"] >= 0
    accounted = sum(entry["seconds"] for entry in stages.values())
    assert accounted <= profile["wall_seconds"]
    assert profile["other_seconds"] == pytest.approx(
        profile["wall_seconds"] - accounted
    )


def test_unprofiled_run_has_no_profile():
    assert run_one(_spec()).telemetry.profile is None
