"""Static and dynamic instruction behaviour."""

import pytest

from repro.isa.instruction import DynInst, StaticInst
from repro.isa.opcodes import FuKind, OpClass, PipeStage


def _load(pc=0x1000, base=0x4000, stride=8, region=64):
    return StaticInst(
        pc, OpClass.LOAD, dest=3, srcs=(1,),
        mem_base=base, mem_stride=stride, mem_region=region,
    )


class TestStaticInst:
    def test_basic_fields(self):
        si = StaticInst(0x2000, OpClass.IMUL, dest=5, srcs=(1, 2))
        assert si.fu_kind is FuKind.COMPLEX
        assert si.latency == 3
        assert not si.is_mem and not si.is_branch

    def test_address_stream_strides_and_wraps(self):
        si = _load(stride=8, region=32)
        addrs = []
        for _ in range(8):
            addrs.append(si.next_address())
            si.exec_count += 1
        assert addrs[:4] == [0x4000, 0x4008, 0x4010, 0x4018]
        assert addrs[4] == 0x4000  # wrapped inside the region

    def test_address_of_non_mem_is_zero(self):
        si = StaticInst(0x2000, OpClass.IALU, dest=1)
        assert si.next_address() == 0

    def test_zero_region_is_fixed_address(self):
        si = _load(region=0)
        si.exec_count = 10
        assert si.next_address() == 0x4000

    def test_branch_flag(self):
        si = StaticInst(0x3000, OpClass.BRANCH, taken_prob=0.5)
        assert si.is_branch


class TestDynInst:
    def test_passthrough_properties(self):
        si = _load()
        di = DynInst(7, si, mem_addr=0x4000, taken=False)
        assert di.pc == si.pc
        assert di.op is OpClass.LOAD
        assert di.is_load and di.is_mem and not di.is_store
        assert di.fu_kind is FuKind.MEM

    def test_fault_bitmask_roundtrip(self):
        di = DynInst(0, _load())
        assert not di.has_fault
        di.add_fault(PipeStage.MEM)
        di.add_fault(PipeStage.ISSUE)
        assert di.faults_in(PipeStage.MEM)
        assert di.faults_in(PipeStage.ISSUE)
        assert not di.faults_in(PipeStage.EXECUTE)
        assert di.has_fault

    def test_predicted_faulty(self):
        di = DynInst(0, _load())
        assert not di.predicted_faulty
        di.pred_fault_stage = PipeStage.ISSUE
        assert di.predicted_faulty

    def test_reset_for_refetch_preserves_identity(self):
        di = DynInst(42, _load(), mem_addr=0xBEEF, taken=True)
        di.phys_dest = 9
        di.completed = True
        di.squashed = True
        di.add_fault(PipeStage.EXECUTE)
        version = di.version
        di.reset_for_refetch()
        assert di.seq == 42
        assert di.mem_addr == 0xBEEF
        assert di.taken is True
        assert di.fault_stages  # fault annotations retained
        assert di.phys_dest == -1
        assert not di.completed and not di.squashed
        assert di.refetched
        assert di.version == version + 1

    def test_reset_clears_prediction(self):
        di = DynInst(0, _load())
        di.pred_fault_stage = PipeStage.MEM
        di.pred_critical = True
        di.tep_key = (1, 2)
        di.reset_for_refetch()
        assert di.pred_fault_stage is None
        assert not di.pred_critical
        assert di.tep_key is None


@pytest.mark.parametrize("op", list(OpClass))
def test_dyninst_constructible_for_every_op(op):
    si = StaticInst(0x100, op, dest=None if op == OpClass.STORE else 1)
    di = DynInst(0, si)
    assert di.latency == si.latency
