"""Basic block and CFG program behaviour."""

import random

import pytest

from repro.isa.instruction import StaticInst
from repro.isa.opcodes import OpClass
from repro.isa.program import BasicBlock, Program


def _inst(pc, op=OpClass.IALU):
    return StaticInst(pc, op, dest=1)


def _block(index, pcs, successors):
    return BasicBlock(index, [_inst(pc) for pc in pcs], successors)


class TestBasicBlock:
    def test_requires_instructions(self):
        with pytest.raises(ValueError):
            BasicBlock(0, [], [(0, 1.0)])

    def test_successor_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum"):
            _block(0, [0x100], [(0, 0.5), (1, 0.2)])

    def test_len(self):
        assert len(_block(0, [0x100, 0x104], [(0, 1.0)])) == 2


class TestProgram:
    def test_duplicate_pc_rejected(self):
        b0 = _block(0, [0x100], [(1, 1.0)])
        b1 = _block(1, [0x100], [(0, 1.0)])
        with pytest.raises(ValueError, match="duplicate"):
            Program([b0, b1])

    def test_requires_blocks(self):
        with pytest.raises(ValueError):
            Program([])

    def test_static_insts_sorted_by_pc(self):
        b0 = _block(0, [0x108, 0x10C], [(1, 1.0)])
        b1 = _block(1, [0x100, 0x104], [(0, 1.0)])
        program = Program([b0, b1])
        pcs = [si.pc for si in program.static_insts]
        assert pcs == sorted(pcs)
        assert program.n_static == 4

    def test_lookup(self):
        program = Program([_block(0, [0x100], [(0, 1.0)])])
        assert program.lookup(0x100).pc == 0x100
        with pytest.raises(KeyError):
            program.lookup(0xDEAD)

    def test_walk_bounded(self):
        program = Program([_block(0, [0x100], [(0, 1.0)])])
        blocks = list(program.walk(random.Random(0), max_blocks=5))
        assert len(blocks) == 5

    def test_walk_terminates_without_successors(self):
        program = Program([_block(0, [0x100], [])])
        blocks = list(program.walk(random.Random(0), max_blocks=10))
        assert len(blocks) == 1

    def test_walk_respects_probabilities(self):
        # block 0 goes to block 1 with p=0.2, to itself with p=0.8
        b0 = _block(0, [0x100], [(1, 0.2), (0, 0.8)])
        b1 = _block(1, [0x200], [(0, 1.0)])
        program = Program([b0, b1])
        rng = random.Random(12)
        visits = {0: 0, 1: 0}
        for block in program.walk(rng, max_blocks=4000):
            visits[block.index] += 1
        # steady state: block 1 visited once per 1/0.2 = 5 visits of block 0
        ratio = visits[1] / visits[0]
        assert 0.15 < ratio < 0.25
