"""Op classes, FU kinds, and pipe-stage classification."""

import pytest

from repro.isa.opcodes import (
    FuKind,
    OOO_STAGES,
    OP_FU_KIND,
    OP_LATENCY,
    OpClass,
    PIPELINED_OPS,
    PipeStage,
    UNPIPELINED_OPS,
    is_mem_op,
)


def test_every_op_has_latency_and_fu():
    for op in OpClass:
        assert op in OP_LATENCY
        assert op in OP_FU_KIND


def test_single_cycle_ops():
    assert OP_LATENCY[OpClass.IALU] == 1
    assert OP_LATENCY[OpClass.BRANCH] == 1


def test_multi_cycle_ops_slower_than_simple():
    for op in (OpClass.IMUL, OpClass.IDIV, OpClass.FPU):
        assert OP_LATENCY[op] > OP_LATENCY[OpClass.IALU]


def test_divide_is_slowest():
    assert OP_LATENCY[OpClass.IDIV] == max(OP_LATENCY.values())


def test_mem_ops_use_mem_port():
    assert OP_FU_KIND[OpClass.LOAD] is FuKind.MEM
    assert OP_FU_KIND[OpClass.STORE] is FuKind.MEM


def test_branch_resolves_on_simple_alu():
    assert OP_FU_KIND[OpClass.BRANCH] is FuKind.SIMPLE


def test_complex_ops_on_complex_unit():
    for op in (OpClass.IMUL, OpClass.IDIV, OpClass.FPU):
        assert OP_FU_KIND[op] is FuKind.COMPLEX


def test_pipelined_unpipelined_split_is_disjoint():
    assert not (PIPELINED_OPS & UNPIPELINED_OPS)
    assert OpClass.IDIV in UNPIPELINED_OPS
    assert OpClass.IMUL in PIPELINED_OPS


def test_ooo_engine_stage_classification():
    for stage in OOO_STAGES:
        assert stage.in_ooo_engine
    for stage in (PipeStage.FETCH, PipeStage.DECODE, PipeStage.RENAME,
                  PipeStage.DISPATCH, PipeStage.RETIRE):
        assert not stage.in_ooo_engine


def test_ooo_stages_in_pipeline_order():
    values = [int(s) for s in OOO_STAGES]
    assert values == sorted(values)


@pytest.mark.parametrize("op,expected", [
    (OpClass.LOAD, True),
    (OpClass.STORE, True),
    (OpClass.IALU, False),
    (OpClass.BRANCH, False),
])
def test_is_mem_op(op, expected):
    assert is_mem_op(op) is expected
