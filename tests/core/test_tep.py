"""Timing Error Predictor behaviour."""

import pytest

from repro.core.tep import TEPConfig, TimingErrorPredictor
from repro.isa.opcodes import PipeStage


@pytest.fixture
def tep():
    return TimingErrorPredictor()


def test_config_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        TEPConfig(n_entries=100)


def test_storage_bits_accounting():
    config = TEPConfig(n_entries=1024, tag_bits=16, counter_bits=2)
    # 16 tag + 2 counter + 4 stage + 1 criticality per entry
    assert config.storage_bits == 1024 * 23


def test_cold_predictor_predicts_nothing(tep):
    assert tep.predict(0x1234, 0) is None


def test_single_fault_allocates_and_predicts(tep):
    key = tep.key_for(0x1000, 0)
    tep.train(key, PipeStage.ISSUE, True)
    prediction = tep.predict(0x1000, 0)
    assert prediction is not None
    assert prediction.stage is PipeStage.ISSUE
    assert not prediction.critical


def test_counter_saturates(tep):
    key = tep.key_for(0x1000, 0)
    for _ in range(10):
        tep.train(key, PipeStage.EXECUTE, True)
    entry = tep._entries[key[0]]
    assert entry.counter == tep.config.counter_max


def test_clean_executions_decay_prediction(tep):
    key = tep.key_for(0x1000, 0)
    tep.train(key, PipeStage.ISSUE, True)
    tep.train(key, None, False)
    assert tep.predict(0x1000, 0) is None


def test_saturated_counter_survives_occasional_clean_run(tep):
    key = tep.key_for(0x1000, 0)
    for _ in range(3):
        tep.train(key, PipeStage.ISSUE, True)
    tep.train(key, None, False)
    assert tep.predict(0x1000, 0) is not None


def test_stage_update_on_refault(tep):
    key = tep.key_for(0x1000, 0)
    tep.train(key, PipeStage.ISSUE, True)
    tep.train(key, PipeStage.MEM, True)
    assert tep.predict(0x1000, 0).stage is PipeStage.MEM


def test_conflicting_pc_replaces_entry(tep):
    # two PCs that alias to the same index (distance = table size words)
    pc_a = 0x1000
    pc_b = pc_a + (tep.config.n_entries << 2) * 1024  # differ in tag bits
    key_a = tep.key_for(pc_a, 0)
    key_b = tep.key_for(pc_b, 0)
    assert key_a[0] == key_b[0] and key_a[1] != key_b[1]
    tep.train(key_a, PipeStage.ISSUE, True)
    tep.train(key_b, PipeStage.MEM, True)
    assert tep.predict(pc_a, 0) is None
    assert tep.predict(pc_b, 0).stage is PipeStage.MEM


def test_train_none_key_is_noop(tep):
    tep.train(None, PipeStage.ISSUE, True)
    assert tep.occupancy == 0.0


def test_mark_critical_requires_tag_match(tep):
    key = tep.key_for(0x1000, 0)
    tep.train(key, PipeStage.ISSUE, True)
    other = tep.key_for(0x1000 + (tep.config.n_entries << 2) * 1024, 0)
    tep.mark_critical(other)
    assert not tep.predict(0x1000, 0).critical
    tep.mark_critical(key)
    assert tep.predict(0x1000, 0).critical


def test_criticality_cleared_on_replacement(tep):
    key = tep.key_for(0x1000, 0)
    tep.train(key, PipeStage.ISSUE, True)
    tep.mark_critical(key)
    evictor = tep.key_for(0x1000 + (tep.config.n_entries << 2) * 1024, 0)
    tep.train(evictor, PipeStage.MEM, True)
    tep.train(key, PipeStage.ISSUE, True)  # reallocate
    assert not tep.predict(0x1000, 0).critical


def test_history_hash_changes_index():
    tep = TimingErrorPredictor(TEPConfig(history_bits=4))
    assert tep.key_for(0x1000, 0b0000) != tep.key_for(0x1000, 0b1010)


def test_default_history_is_pc_only(tep):
    assert tep.key_for(0x1000, 0) == tep.key_for(0x1000, 0xFF)


def test_reset(tep):
    key = tep.key_for(0x1000, 0)
    tep.train(key, PipeStage.ISSUE, True)
    tep.reset()
    assert tep.predict(0x1000, 0) is None
    assert tep.lookups == 1  # the predict above, counters were cleared first


def test_stats_counting(tep):
    tep.predict(0x1, 0)
    tep.predict(0x2, 0)
    key = tep.key_for(0x1, 0)
    tep.train(key, PipeStage.ISSUE, True)
    tep.predict(0x1, 0)
    assert tep.lookups == 3
    assert tep.hits == 1
    assert tep.trainings == 1
    assert tep.occupancy == pytest.approx(1 / tep.config.n_entries)
