"""Per-stage VTE effects (Sections 3.2-3.3)."""

import pytest

from repro.core.vte import FreezeKind, vte_effects
from repro.isa.opcodes import OpClass, PipeStage


def test_no_prediction_no_effects():
    effects = vte_effects(None, OpClass.IALU)
    assert effects.stage is None
    assert effects.freeze is FreezeKind.NONE
    assert effects.broadcast_delay == 0


@pytest.mark.parametrize("stage", [
    PipeStage.FETCH, PipeStage.DECODE, PipeStage.RENAME,
    PipeStage.DISPATCH, PipeStage.RETIRE,
])
def test_in_order_stages_have_no_scheduler_effects(stage):
    assert vte_effects(stage, OpClass.IALU).stage is None


def test_issue_fault_freezes_slot_without_delaying_instruction():
    effects = vte_effects(PipeStage.ISSUE, OpClass.IALU)
    assert effects.freeze is FreezeKind.SLOT_ONE_CYCLE
    assert effects.broadcast_delay == 0
    assert effects.rr_extra == effects.ex_extra == 0


def test_regread_fault_adds_cycle_and_blocks_port():
    effects = vte_effects(PipeStage.REGREAD, OpClass.IALU)
    assert effects.rr_extra == 1
    assert effects.freeze is FreezeKind.SLOT_ONE_CYCLE
    assert effects.broadcast_delay == 1


def test_execute_fault_single_cycle_unit():
    effects = vte_effects(PipeStage.EXECUTE, OpClass.IALU)
    assert effects.ex_extra == 1
    assert effects.freeze is FreezeKind.SLOT_ONE_CYCLE


def test_execute_fault_pipelined_multicycle_unit():
    effects = vte_effects(PipeStage.EXECUTE, OpClass.IMUL)
    assert effects.freeze is FreezeKind.UNTIL_COMPLETE


def test_execute_fault_unpipelined_unit():
    effects = vte_effects(PipeStage.EXECUTE, OpClass.IDIV)
    assert effects.freeze is FreezeKind.BUSY_PLUS_ONE


def test_mem_fault_on_load():
    effects = vte_effects(PipeStage.MEM, OpClass.LOAD)
    assert effects.mem_extra == 1
    assert effects.freeze is FreezeKind.SLOT_ONE_CYCLE


def test_mem_fault_on_store():
    assert vte_effects(PipeStage.MEM, OpClass.STORE).mem_extra == 1


def test_mem_prediction_on_non_mem_op_is_inert():
    effects = vte_effects(PipeStage.MEM, OpClass.IALU)
    assert effects.stage is None
    assert effects.freeze is FreezeKind.NONE


def test_writeback_fault_recirculates_slot():
    effects = vte_effects(PipeStage.WRITEBACK, OpClass.IALU)
    assert effects.wb_extra == 1
    assert effects.freeze is FreezeKind.WB_SLOT
    # the bypass already delivered the value: no broadcast delay
    assert effects.broadcast_delay == 0


def test_exactly_one_extra_cycle_per_prediction():
    for stage in (PipeStage.REGREAD, PipeStage.EXECUTE, PipeStage.WRITEBACK):
        effects = vte_effects(stage, OpClass.IALU)
        total = (effects.rr_extra + effects.ex_extra + effects.mem_extra
                 + effects.wb_extra)
        assert total == 1
    effects = vte_effects(PipeStage.MEM, OpClass.LOAD)
    assert (effects.rr_extra + effects.ex_extra + effects.mem_extra
            + effects.wb_extra) == 1


def test_repr_mentions_stage():
    assert "EXECUTE" in repr(vte_effects(PipeStage.EXECUTE, OpClass.IALU))
