"""Figure 2: scheduling around a faulty instruction.

The paper's example: I2 is predicted faulty in a single-cycle execution
unit. Under violation-aware scheduling the unit's FUSR is cleared for one
cycle (no new instruction behind I2), the tag broadcast is delayed by one
cycle, and the dependent I3 is held back exactly one cycle — independent
instructions and the rest of the pipeline are unaffected.
"""

import pytest

from repro.core.schemes import SchemeKind
from repro.core.tep import TimingErrorPredictor
from repro.isa.instruction import StaticInst
from repro.isa.opcodes import OpClass, PipeStage
from repro.isa.program import BasicBlock, Program

from tests.conftest import make_core
from tests.uarch.test_pipeline_faults import ForcedInjector
from repro.uarch.config import CoreConfig

I1, I2, I3, I4 = 0x1000, 0x1004, 0x1008, 0x100C


def _example_program():
    insts = [
        StaticInst(I1, OpClass.IALU, dest=1, srcs=()),
        StaticInst(I2, OpClass.IALU, dest=2, srcs=()),
        StaticInst(I3, OpClass.IALU, dest=3, srcs=(2,)),   # depends on I2
        StaticInst(I4, OpClass.IALU, dest=4, srcs=()),     # independent
        StaticInst(0x1010, OpClass.BRANCH, srcs=(), taken_prob=0.0),
    ]
    return Program([BasicBlock(0, insts, [])], name="fig2")


class _Recorder:
    """Wraps a trace iterator, keeping every emitted instruction."""

    def __init__(self, trace):
        self.trace = iter(trace)
        self.insts = {}

    def __iter__(self):
        return self

    def __next__(self):
        inst = next(self.trace)
        self.insts[inst.pc] = inst
        return inst


def _run(scheme, faulty):
    config = CoreConfig.core1(n_simple_alu=1)
    tep = None
    injector = None
    if faulty:
        injector = ForcedInjector(PipeStage.EXECUTE, [I2])
        tep = TimingErrorPredictor()
        key = tep.key_for(I2, 0)
        for _ in range(3):
            tep.train(key, PipeStage.EXECUTE, True)
    core = make_core(_example_program(), scheme, injector, vdd=1.04,
                     config=config, tep=tep)
    recorder = _Recorder(core.trace)
    core.trace = recorder
    core.run(5)
    return recorder.insts


def test_fault_free_schedule_is_back_to_back():
    insts = _run(SchemeKind.FAULT_FREE, faulty=False)
    assert insts[I2].issue_cycle == insts[I1].issue_cycle + 1
    # I3 waits for I2's broadcast: one cycle after I2's select
    assert insts[I3].issue_cycle == insts[I2].issue_cycle + 1


def test_dependent_held_back_exactly_one_cycle():
    base = _run(SchemeKind.ABS, faulty=False)
    faulty = _run(SchemeKind.ABS, faulty=True)
    assert faulty[I2].issue_cycle == base[I2].issue_cycle
    # the delayed broadcast holds I3 back one extra cycle (Section 3.4)
    assert (
        faulty[I3].issue_cycle - faulty[I2].issue_cycle
        == base[I3].issue_cycle - base[I2].issue_cycle + 1
    )


def test_fusr_blocks_the_unit_for_one_cycle():
    faulty = _run(SchemeKind.ABS, faulty=True)
    # no instruction is selected for the (single) ALU in the cycle right
    # after the faulty I2
    issue_cycles = sorted(
        inst.issue_cycle for inst in faulty.values()
    )
    frozen_cycle = faulty[I2].issue_cycle + 1
    assert frozen_cycle not in issue_cycles


def test_no_replay_in_tolerated_example():
    base = _run(SchemeKind.ABS, faulty=False)
    faulty = _run(SchemeKind.ABS, faulty=True)
    assert all(not inst.squashed for inst in faulty.values())
    # total slip is bounded: only the faulty instruction's dependents move
    slip = max(
        faulty[pc].commit_cycle - base[pc].commit_cycle
        for pc in (I1, I2, I3, I4)
    )
    assert slip <= 2


@pytest.mark.parametrize("scheme", [SchemeKind.ABS, SchemeKind.CDS])
def test_age_ordered_policies_leave_older_independents_alone(scheme):
    base = _run(scheme, faulty=False)
    faulty = _run(scheme, faulty=True)
    # I1 (older, independent) is completely unaffected
    assert faulty[I1].issue_cycle == base[I1].issue_cycle


def test_ffs_schedules_the_faulty_instruction_eagerly():
    faulty = _run(SchemeKind.FFS, faulty=True)
    # faulty-first: I2 wins the single ALU over the older I1, releasing
    # its dependent I3 as early as possible (Section 3.5)
    assert faulty[I2].issue_cycle < faulty[I1].issue_cycle
    assert all(not inst.squashed for inst in faulty.values())
