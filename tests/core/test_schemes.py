"""Scheme factory and flags."""

import pytest

from repro.core.policies import (
    AgeBasedSelection,
    CriticalityDrivenSelection,
    FaultyFirstSelection,
)
from repro.core.schemes import PROPOSED_SCHEMES, SchemeKind, make_scheme


def test_fault_free_flags():
    scheme = make_scheme(SchemeKind.FAULT_FREE)
    assert not scheme.uses_tep
    assert not scheme.tolerates_predicted_faults


def test_razor_replays_everything():
    scheme = make_scheme(SchemeKind.RAZOR)
    assert not scheme.uses_tep
    assert not scheme.uses_vte
    assert not scheme.uses_ep_stall


def test_ep_uses_stalls_not_vte():
    scheme = make_scheme(SchemeKind.EP)
    assert scheme.uses_tep
    assert scheme.uses_ep_stall
    assert not scheme.uses_vte
    assert scheme.tolerates_predicted_faults
    # the paper uses age-based selection for the EP baseline (Section 4.2)
    assert isinstance(scheme.policy, AgeBasedSelection)


@pytest.mark.parametrize("kind,policy_cls", [
    (SchemeKind.ABS, AgeBasedSelection),
    (SchemeKind.FFS, FaultyFirstSelection),
    (SchemeKind.CDS, CriticalityDrivenSelection),
])
def test_proposed_schemes_use_vte(kind, policy_cls):
    scheme = make_scheme(kind)
    assert scheme.uses_tep and scheme.uses_vte
    assert not scheme.uses_ep_stall
    assert isinstance(scheme.policy, policy_cls)


def test_only_cds_detects_criticality():
    assert make_scheme(SchemeKind.CDS).detects_criticality
    assert not make_scheme(SchemeKind.FFS).detects_criticality
    assert not make_scheme(SchemeKind.ABS).detects_criticality


def test_string_lookup_by_name_and_value():
    assert make_scheme("ABS").kind is SchemeKind.ABS
    assert make_scheme("abs").kind is SchemeKind.ABS
    assert make_scheme("fault_free").kind is SchemeKind.FAULT_FREE


def test_unknown_scheme_raises():
    with pytest.raises(ValueError):
        make_scheme("made_up")


def test_proposed_scheme_list():
    assert PROPOSED_SCHEMES == (
        SchemeKind.ABS, SchemeKind.FFS, SchemeKind.CDS
    )


def test_scheme_name_matches_paper_figures():
    for kind in PROPOSED_SCHEMES:
        assert make_scheme(kind).name == kind.name
