"""Criticality Detection Logic (CDL)."""

import pytest

from repro.core.criticality import (
    CriticalityDetector,
    DEFAULT_CRITICALITY_THRESHOLD,
)
from repro.core.tep import TimingErrorPredictor
from repro.isa.instruction import DynInst, StaticInst
from repro.isa.opcodes import OpClass, PipeStage


def _inst(pc=0x1000):
    return DynInst(0, StaticInst(pc, OpClass.IALU, dest=1))


@pytest.fixture
def tep():
    return TimingErrorPredictor()


def test_paper_threshold_default():
    assert DEFAULT_CRITICALITY_THRESHOLD == 8


def test_rejects_bad_threshold(tep):
    with pytest.raises(ValueError):
        CriticalityDetector(tep, threshold=0)


def test_below_threshold_not_critical(tep):
    cdl = CriticalityDetector(tep)
    inst = _inst()
    inst.tep_key = tep.key_for(inst.pc, 0)
    tep.train(inst.tep_key, PipeStage.ISSUE, True)
    assert cdl.observe_broadcast(inst, 7) is False
    assert not tep.predict(inst.pc, 0).critical


def test_at_threshold_marks_tep_entry(tep):
    cdl = CriticalityDetector(tep)
    inst = _inst()
    inst.tep_key = tep.key_for(inst.pc, 0)
    tep.train(inst.tep_key, PipeStage.ISSUE, True)
    assert cdl.observe_broadcast(inst, 8) is True
    assert tep.predict(inst.pc, 0).critical


def test_without_key_observation_counts_but_marks_nothing(tep):
    cdl = CriticalityDetector(tep)
    inst = _inst()
    assert cdl.observe_broadcast(inst, 20) is True
    assert cdl.observations == 1


def test_mark_rate(tep):
    cdl = CriticalityDetector(tep, threshold=4)
    inst = _inst()
    cdl.observe_broadcast(inst, 2)
    cdl.observe_broadcast(inst, 5)
    cdl.observe_broadcast(inst, 9)
    assert cdl.mark_rate == pytest.approx(2 / 3)


def test_mark_rate_without_observations(tep):
    assert CriticalityDetector(tep).mark_rate == 0.0


def test_custom_threshold(tep):
    cdl = CriticalityDetector(tep, threshold=2)
    inst = _inst()
    inst.tep_key = tep.key_for(inst.pc, 0)
    tep.train(inst.tep_key, PipeStage.MEM, True)
    cdl.observe_broadcast(inst, 2)
    assert tep.predict(inst.pc, 0).critical
