"""MRE and TVP predictor variants (the designs the TEP combines)."""

import pytest

from repro.core.predictors import (
    MostRecentEntryPredictor,
    TimingViolationPredictor,
    make_predictor,
)
from repro.core.tep import TimingErrorPredictor
from repro.isa.opcodes import PipeStage


class TestMre:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            MostRecentEntryPredictor(0)

    def test_predicts_recent_violator(self):
        mre = MostRecentEntryPredictor(4)
        mre.train(mre.key_for(0x100, 0), PipeStage.ISSUE, True)
        prediction = mre.predict(0x100, 0)
        assert prediction is not None
        assert prediction.stage is PipeStage.ISSUE

    def test_single_fault_is_enough(self):
        # unlike counter-based designs, MRE predicts after one violation
        mre = MostRecentEntryPredictor(4)
        mre.train(0x100, PipeStage.MEM, True)
        assert mre.predict(0x100, 0) is not None

    def test_clean_execution_evicts(self):
        mre = MostRecentEntryPredictor(4)
        mre.train(0x100, PipeStage.ISSUE, True)
        mre.train(0x100, None, False)
        assert mre.predict(0x100, 0) is None

    def test_lru_replacement(self):
        mre = MostRecentEntryPredictor(2)
        mre.train(0x100, PipeStage.ISSUE, True)
        mre.train(0x200, PipeStage.ISSUE, True)
        mre.predict(0x100, 0)  # refresh 0x100
        mre.train(0x300, PipeStage.ISSUE, True)  # evicts 0x200
        assert mre.predict(0x100, 0) is not None
        assert mre.predict(0x200, 0) is None
        assert mre.predict(0x300, 0) is not None

    def test_history_ignored(self):
        mre = MostRecentEntryPredictor(4)
        mre.train(mre.key_for(0x100, 0b1010), PipeStage.ISSUE, True)
        assert mre.predict(0x100, 0b0101) is not None

    def test_criticality_sticky_on_refault(self):
        mre = MostRecentEntryPredictor(4)
        mre.train(0x100, PipeStage.ISSUE, True)
        mre.mark_critical(0x100)
        mre.train(0x100, PipeStage.ISSUE, True)
        assert mre.predict(0x100, 0).critical

    def test_occupancy_and_reset(self):
        mre = MostRecentEntryPredictor(4)
        mre.train(0x100, PipeStage.ISSUE, True)
        assert mre.occupancy == pytest.approx(0.25)
        mre.reset()
        assert mre.occupancy == 0.0


class TestTvp:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            TimingViolationPredictor(100)
        with pytest.raises(ValueError):
            TimingViolationPredictor(threshold=0)

    def test_needs_threshold_faults(self):
        tvp = TimingViolationPredictor(threshold=2, history_bits=0)
        key = tvp.key_for(0x100, 0)
        tvp.train(key, PipeStage.ISSUE, True)
        assert tvp.predict(0x100, 0) is None  # one fault: below threshold
        tvp.train(key, PipeStage.ISSUE, True)
        assert tvp.predict(0x100, 0) is not None

    def test_untagged_aliasing(self):
        # two PCs mapping to the same counter share a prediction — the
        # aliasing weakness the TEP's tags remove
        tvp = TimingViolationPredictor(n_entries=16, history_bits=0,
                                       threshold=1)
        alias = 0x100 + (16 << 2)
        assert tvp.key_for(0x100, 0) == tvp.key_for(alias, 0)
        tvp.train(tvp.key_for(0x100, 0), PipeStage.ISSUE, True)
        assert tvp.predict(alias, 0) is not None

    def test_counter_decay(self):
        tvp = TimingViolationPredictor(threshold=1, history_bits=0)
        key = tvp.key_for(0x100, 0)
        tvp.train(key, PipeStage.ISSUE, True)
        tvp.train(key, None, False)
        assert tvp.predict(0x100, 0) is None

    def test_history_changes_index(self):
        tvp = TimingViolationPredictor(history_bits=4)
        assert tvp.key_for(0x100, 0) != tvp.key_for(0x100, 0b1111)

    def test_occupancy_and_reset(self):
        tvp = TimingViolationPredictor(n_entries=16, threshold=1)
        tvp.train(3, PipeStage.ISSUE, True)
        assert tvp.occupancy == pytest.approx(1 / 16)
        tvp.reset()
        assert tvp.occupancy == 0.0


class TestFactory:
    def test_builds_all_kinds(self):
        assert isinstance(make_predictor("tep"), TimingErrorPredictor)
        assert isinstance(make_predictor("MRE"), MostRecentEntryPredictor)
        assert isinstance(make_predictor("tvp"), TimingViolationPredictor)

    def test_kwargs_forwarded(self):
        assert make_predictor("mre", n_entries=8).n_entries == 8
        assert make_predictor("tep", n_entries=64).config.n_entries == 64

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_predictor("oracle")


def test_predictor_quality_ordering():
    """End to end: TEP >= MRE >> TVP in prediction coverage (DESIGN.md)."""
    from repro.core.schemes import SchemeKind
    from repro.harness.runner import RunSpec, run_one

    coverage = {}
    for kind in ("tep", "mre", "tvp"):
        result = run_one(
            RunSpec("astar", SchemeKind.ABS, 0.97, 3000, 1500,
                    predictor=kind)
        )
        stats = result.stats
        coverage[kind] = (
            stats.faults_predicted / stats.faults_total
            if stats.faults_total else 1.0
        )
    assert coverage["tep"] >= coverage["mre"] - 0.05
    assert coverage["mre"] > coverage["tvp"]
