"""Selection policy ordering (ABS / FFS / CDS)."""

import pytest

from repro.core.policies import (
    AgeBasedSelection,
    CriticalityDrivenSelection,
    FaultyFirstSelection,
    SelectionPolicy,
)
from repro.isa.instruction import DynInst, StaticInst
from repro.isa.opcodes import OpClass, PipeStage
from repro.uarch.issue_queue import IssueQueue


def _entry(seq, faulty=False, critical=False):
    inst = DynInst(seq, StaticInst(0x100 + 4 * seq, OpClass.IALU, dest=1))
    if faulty:
        inst.pred_fault_stage = PipeStage.EXECUTE
    inst.pred_critical = critical
    return inst


def _fill(iq, entries):
    for inst in entries:
        iq.insert(inst)
    return entries


def test_base_policy_is_abstract():
    with pytest.raises(NotImplementedError):
        SelectionPolicy().order([], IssueQueue(4))


class TestAgeBased:
    def test_oldest_first(self):
        iq = IssueQueue(8)
        entries = _fill(iq, [_entry(s) for s in range(5)])
        shuffled = [entries[3], entries[0], entries[4], entries[1]]
        ordered = AgeBasedSelection().order(shuffled, iq)
        assert [e.seq for e in ordered] == [0, 1, 3, 4]

    def test_mod64_wraparound(self):
        iq = IssueQueue(8)
        # advance the dispatch counter to just before the wrap
        for seq in range(62):
            filler = _entry(seq)
            iq.insert(filler)
            iq.remove(filler)
        old = _entry(62)   # timestamp 62
        young = _entry(63)  # timestamp 63
        younger = _entry(64)  # timestamp 0 after wrap
        _fill(iq, [old, young, younger])
        assert younger.timestamp == 0
        ordered = AgeBasedSelection().order([younger, young, old], iq)
        assert [e.seq for e in ordered] == [62, 63, 64]

    def test_exact_mode_matches_mod64_in_small_window(self):
        iq = IssueQueue(16)
        entries = _fill(iq, [_entry(s) for s in range(10)])
        a = AgeBasedSelection(exact=False).order(list(entries), iq)
        b = AgeBasedSelection(exact=True).order(list(entries), iq)
        assert [e.seq for e in a] == [e.seq for e in b]

    def test_ignores_fault_bits(self):
        iq = IssueQueue(8)
        entries = _fill(iq, [_entry(0), _entry(1, faulty=True)])
        ordered = AgeBasedSelection().order(list(entries), iq)
        assert ordered[0].seq == 0


class TestFaultyFirst:
    def test_faulty_wins_over_age(self):
        iq = IssueQueue(8)
        entries = _fill(iq, [_entry(0), _entry(1, faulty=True), _entry(2)])
        ordered = FaultyFirstSelection().order(list(entries), iq)
        assert [e.seq for e in ordered] == [1, 0, 2]

    def test_falls_back_to_age_without_faulty(self):
        iq = IssueQueue(8)
        entries = _fill(iq, [_entry(s) for s in range(4)])
        ordered = FaultyFirstSelection().order(list(entries)[::-1], iq)
        assert [e.seq for e in ordered] == [0, 1, 2, 3]

    def test_multiple_faulty_ordered_by_age(self):
        iq = IssueQueue(8)
        entries = _fill(
            iq, [_entry(0), _entry(1, faulty=True), _entry(2, faulty=True)]
        )
        ordered = FaultyFirstSelection().order(list(entries), iq)
        assert [e.seq for e in ordered] == [1, 2, 0]


class TestCriticalityDriven:
    def test_critical_faulty_wins(self):
        iq = IssueQueue(8)
        entries = _fill(iq, [
            _entry(0),
            _entry(1, faulty=True),                 # faulty, not critical
            _entry(2, faulty=True, critical=True),  # the CDS target
        ])
        ordered = CriticalityDrivenSelection().order(list(entries), iq)
        assert ordered[0].seq == 2

    def test_non_faulty_critical_does_not_win(self):
        # criticality only matters for predicted-faulty instructions
        iq = IssueQueue(8)
        entries = _fill(iq, [_entry(0), _entry(1, critical=True)])
        ordered = CriticalityDrivenSelection().order(list(entries), iq)
        assert ordered[0].seq == 0

    def test_falls_back_to_age(self):
        iq = IssueQueue(8)
        entries = _fill(iq, [_entry(s, faulty=True) for s in range(3)])
        ordered = CriticalityDrivenSelection().order(list(entries)[::-1], iq)
        assert [e.seq for e in ordered] == [0, 1, 2]


def test_policy_names():
    assert AgeBasedSelection().name == "ABS"
    assert FaultyFirstSelection().name == "FFS"
    assert CriticalityDrivenSelection().name == "CDS"
