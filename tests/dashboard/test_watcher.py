"""JournalWatcher: torn tails, rotation/truncation, late files."""

import json
import os

from repro.campaign.journal import JOURNAL_NAME, Journal, write_manifest
from repro.dashboard.watcher import (
    SOURCE_JOURNAL,
    SOURCE_LEDGER,
    SOURCE_SHARD,
    JournalWatcher,
    TailedFile,
)
from repro.fleet.ledger import LeaseLedger
from repro.fleet.merge import shard_dir, shard_path


def _write(path, text, mode="a"):
    with open(path, mode) as fh:
        fh.write(text)


def _line(record):
    return json.dumps(record, sort_keys=True) + "\n"


class TestTailedFile:
    def test_absent_file_polls_empty(self, tmp_path):
        tail = TailedFile(str(tmp_path / "none.jsonl"), SOURCE_JOURNAL)
        assert tail.poll() == []
        assert tail.poll() == []

    def test_emits_each_record_exactly_once(self, tmp_path):
        path = tmp_path / "j.jsonl"
        tail = TailedFile(str(path), SOURCE_JOURNAL)
        _write(path, _line({"a": 1}) + _line({"a": 2}))
        assert tail.poll() == [{"a": 1}, {"a": 2}]
        assert tail.poll() == []
        _write(path, _line({"a": 3}))
        assert tail.poll() == [{"a": 3}]

    def test_mid_record_torn_tail_is_delayed_not_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        tail = TailedFile(str(path), SOURCE_JOURNAL)
        full = _line({"point": "p", "index": 7})
        # a writer killed (or raced) mid-append: half a record, no \n
        _write(path, _line({"index": 0}) + full[: len(full) // 2])
        assert tail.poll() == [{"index": 0}]
        assert tail.n_bad == 0  # torn is not corrupt
        assert tail.poll() == []  # still torn: nothing new, no dup
        _write(path, full[len(full) // 2:])
        assert tail.poll() == [{"point": "p", "index": 7}]
        assert tail.n_bad == 0

    def test_torn_tail_split_at_every_byte(self, tmp_path):
        """No split position of a record duplicates or drops it."""
        record = {"event": "run", "point": "a/b/0.97", "index": 3,
                  "metrics": {"ipc": 1.25}}
        full = _line(record)
        for cut in range(1, len(full)):
            path = tmp_path / f"j{cut}.jsonl"
            tail = TailedFile(str(path), SOURCE_JOURNAL)
            _write(path, full[:cut])
            first = tail.poll()
            _write(path, full[cut:])
            second = tail.poll()
            assert first + second == [record], f"split at byte {cut}"

    def test_rotation_new_inode_rereads_from_zero(self, tmp_path):
        """An atomic os.replace (merge_journals) re-emits the new file."""
        path = tmp_path / "j.jsonl"
        tail = TailedFile(str(path), SOURCE_JOURNAL)
        _write(path, _line({"index": 0}))
        assert tail.poll() == [{"index": 0}]
        merged = tmp_path / "j.jsonl.tmp"
        _write(merged, _line({"index": 0}) + _line({"index": 1}), mode="w")
        os.replace(merged, path)
        assert tail.poll() == [{"index": 0}, {"index": 1}]

    def test_truncation_in_place_resets_cursor(self, tmp_path):
        path = tmp_path / "j.jsonl"
        tail = TailedFile(str(path), SOURCE_JOURNAL)
        _write(path, _line({"index": 0}) + _line({"index": 1}))
        assert len(tail.poll()) == 2
        # Journal.repair-style truncation: same inode, smaller size
        with open(path, "r+") as fh:
            fh.truncate(len(_line({"index": 0})))
        assert tail.poll() == [{"index": 0}]

    def test_vanished_file_restarts_when_it_reappears(self, tmp_path):
        path = tmp_path / "j.jsonl"
        tail = TailedFile(str(path), SOURCE_JOURNAL)
        _write(path, _line({"index": 0}))
        assert tail.poll() == [{"index": 0}]
        os.unlink(path)
        assert tail.poll() == []
        _write(path, _line({"index": 9}))
        assert tail.poll() == [{"index": 9}]

    def test_corrupt_terminated_line_counted_not_raised(self, tmp_path):
        path = tmp_path / "j.jsonl"
        tail = TailedFile(str(path), SOURCE_JOURNAL)
        _write(path, "not json at all\n" + _line({"ok": True}))
        assert tail.poll() == [{"ok": True}]
        assert tail.n_bad == 1


class TestJournalWatcher:
    def test_sources_are_tagged_and_ordered(self, tmp_path):
        Journal(tmp_path).append({"event": "run", "index": 0})
        shards = shard_dir(tmp_path)
        os.makedirs(shards)
        _write(shard_path(tmp_path, "w1"), _line({"event": "run",
                                                  "index": 1}))
        LeaseLedger(tmp_path).granted(1, "p", [0], "w1")
        watcher = JournalWatcher(tmp_path)
        out = watcher.poll()
        assert [(s, sh) for s, sh, _ in out] == [
            (SOURCE_JOURNAL, None), (SOURCE_SHARD, "w1"),
            (SOURCE_LEDGER, None),
        ]
        assert watcher.poll() == []

    def test_shard_appearing_after_watch_start(self, tmp_path):
        watcher = JournalWatcher(tmp_path)
        assert watcher.poll() == []  # nothing exists yet
        os.makedirs(shard_dir(tmp_path))
        _write(shard_path(tmp_path, "late"), _line({"index": 4}))
        out = watcher.poll()
        assert out == [(SOURCE_SHARD, "late", {"index": 4})]

    def test_multiple_shards_sorted_by_name(self, tmp_path):
        os.makedirs(shard_dir(tmp_path))
        for name in ("zeta", "alpha"):
            _write(shard_path(tmp_path, name), _line({"w": name}))
        out = JournalWatcher(tmp_path).poll()
        assert [sh for _, sh, _ in out] == ["alpha", "zeta"]

    def test_non_jsonl_files_in_shard_dir_ignored(self, tmp_path):
        os.makedirs(shard_dir(tmp_path))
        _write(shard_dir(tmp_path) + "/README.txt", "hi\n")
        assert JournalWatcher(tmp_path).poll() == []

    def test_opt_outs(self, tmp_path):
        os.makedirs(shard_dir(tmp_path))
        _write(shard_path(tmp_path, "w"), _line({"x": 1}))
        LeaseLedger(tmp_path).granted(1, "p", [0], "w")
        watcher = JournalWatcher(tmp_path, ledger=False, shards=False)
        assert watcher.poll() == []

    def test_n_bad_sums_all_files(self, tmp_path):
        _write(tmp_path / JOURNAL_NAME, "garbage\n")
        os.makedirs(shard_dir(tmp_path))
        _write(shard_path(tmp_path, "w"), "also garbage\n")
        watcher = JournalWatcher(tmp_path)
        watcher.poll()
        assert watcher.n_bad == 2


class TestAgainstRealWriters:
    def test_tails_a_live_journal_append_by_append(self, tmp_path):
        from repro.campaign.plan import CampaignSpec

        spec = CampaignSpec(name="w", benchmarks=["astar"],
                            schemes=["EP"], n_instructions=500,
                            warmup=250)
        write_manifest(tmp_path, spec)
        watcher = JournalWatcher(tmp_path)
        with Journal(tmp_path) as journal:
            for index in range(3):
                journal.append({"event": "run", "point": "p",
                                "index": index})
                out = watcher.poll()
                assert [r["index"] for _, _, r in out] == [index]
