"""CampaignView: byte-identity with the offline tools, fleet folding."""

import json
import os

from repro.campaign.executor import run_campaign
from repro.campaign.journal import Journal, write_manifest
from repro.campaign.plan import CampaignSpec
from repro.campaign.report import build_report
from repro.campaign.status import build_status
from repro.dashboard.view import CampaignView
from repro.fleet.ledger import LeaseLedger
from repro.fleet.merge import shard_path

_FAST = dict(n_instructions=500, warmup=250)


def _spec(**kw):
    defaults = dict(
        name="view-test", benchmarks=["astar"], schemes=["EP", "ABS"],
        vdds=[0.97], seeds=[1, 2], **_FAST,
    )
    defaults.update(kw)
    return CampaignSpec(**defaults)


def _run(point, index, overhead=0.1):
    return {
        "event": "run", "point": point, "index": index, "seed": index,
        "metrics": {"perf_overhead": overhead, "ed_overhead": 0.2,
                    "ipc": 1.0, "fault_rate": 0.01, "replay_rate": 0.0},
        "counts": {"faults": 5, "replays": 0, "committed": 500},
    }


def _dump(payload):
    return json.dumps(payload, sort_keys=True)


class TestByteIdentity:
    def test_live_view_matches_cold_rebuild_of_real_campaign(
        self, tmp_path
    ):
        """The acceptance property: view == `campaign report`, bytewise.

        A real (small) campaign run, then the view folds the same
        journal through the watcher — status and report must serialize
        byte-identically to the offline rebuild.
        """
        campaign = tmp_path / "c"
        run_campaign(campaign, spec=_spec(), cache=False, snapshots=False)
        view = CampaignView(campaign)
        view.refresh()
        assert _dump(view.report()) == _dump(build_report(campaign))
        assert _dump(view.status()) == _dump(build_status(campaign))
        report_json = json.load(open(campaign / "report.json"))
        assert _dump(view.report()) == _dump(report_json)

    def test_incremental_folding_matches_cold_rebuild_each_step(
        self, tmp_path
    ):
        spec = _spec()
        write_manifest(tmp_path, spec)
        first, second = (p.id for p in spec.points())
        view = CampaignView(tmp_path)
        with Journal(tmp_path) as journal:
            events = [
                _run(first, 0), _run(first, 1, overhead=0.14),
                {"event": "point", "point": first, "n": 2,
                 "stopped": "ci", "summary": {}},
                _run(second, 0), {"event": "done"},
            ]
            for event in events:
                journal.append(event)
                view.refresh()
                assert _dump(view.status()) == _dump(
                    build_status(tmp_path)
                )
                assert _dump(view.report()) == _dump(
                    build_report(tmp_path)
                )
        assert view.state.done

    def test_rotation_reemission_is_idempotent(self, tmp_path):
        """Re-reading a replaced journal must not double-count draws."""
        spec = _spec()
        write_manifest(tmp_path, spec)
        point = spec.points()[0].id
        view = CampaignView(tmp_path)
        with Journal(tmp_path) as journal:
            journal.append(_run(point, 0))
            journal.append(_run(point, 1))
        view.refresh()
        before = _dump(view.report())
        # merge_journals-style atomic replace: same records, new inode
        path = os.path.join(tmp_path, "journal.jsonl")
        tmp = path + ".merge"
        with open(path) as src, open(tmp, "w") as dst:
            dst.write(src.read())
        os.replace(tmp, path)
        assert view.refresh() == 0  # re-emitted records all deduped
        assert _dump(view.report()) == before

    def test_shard_records_fold_like_a_merged_journal(self, tmp_path):
        """Draws arriving via shards == the same draws in the journal."""
        spec = _spec()
        a = tmp_path / "a"
        b = tmp_path / "b"
        write_manifest(a, spec)
        write_manifest(b, spec)
        point = spec.points()[0].id
        # directory a: draws in the canonical journal
        with Journal(a) as journal:
            journal.append(_run(point, 0))
            journal.append(_run(point, 1, overhead=0.3))
        # directory b: same draws, interleaved across two shards, out
        # of index order
        os.makedirs(b / "shards")
        with open(shard_path(b, "w2"), "w") as fh:
            fh.write(_dump(_run(point, 1, overhead=0.3)) + "\n")
        with open(shard_path(b, "w1"), "w") as fh:
            fh.write(_dump(_run(point, 0)) + "\n")
        view_a = CampaignView(a)
        view_b = CampaignView(b)
        view_a.refresh()
        view_b.refresh()
        assert _dump(view_a.report()) == _dump(view_b.report())

    def test_duplicate_draw_across_journal_and_shard_deduped(
        self, tmp_path
    ):
        """First occurrence wins — the fleet's exactly-once rule."""
        spec = _spec()
        write_manifest(tmp_path, spec)
        point = spec.points()[0].id
        with Journal(tmp_path) as journal:
            journal.append(_run(point, 0, overhead=0.1))
        os.makedirs(tmp_path / "shards")
        with open(shard_path(tmp_path, "w"), "w") as fh:
            fh.write(_dump(_run(point, 0, overhead=9.9)) + "\n")
        view = CampaignView(tmp_path)
        view.refresh()
        runs = view.state.runs[point]
        assert len(runs) == 1
        assert runs[0]["metrics"]["perf_overhead"] == 0.1


class TestFleetFolding:
    def test_ledger_events_build_worker_and_lease_health(self, tmp_path):
        spec = _spec()
        write_manifest(tmp_path, spec)
        ledger = LeaseLedger(tmp_path)
        ledger.granted(1, "p", [0, 1], "w1")
        ledger.granted(2, "p", [2, 3], "w2")
        ledger.completed(1)
        ledger.stolen(3, 2, "p", [3], "w1", "w2")
        ledger.revoked(2, "heartbeat-expired")
        ledger.scaled("spawn", "w3", "queue-depth")
        ledger.audited({"auth_failures": 2, "steals": 1})
        view = CampaignView(tmp_path)
        view.refresh()
        fleet = view.fleet_status()
        assert fleet["leases_granted"] == 2
        assert fleet["leases_completed"] == 1
        assert fleet["leases_revoked"] == 1
        assert fleet["workers"]["w1"]["completed"] == 1
        assert fleet["workers"]["w2"]["revoked"] == 1
        assert fleet["workers"]["w2"]["stolen_from"] == 1
        assert [s["thief_lease"] for s in fleet["steals"]] == [3]
        assert [s["action"] for s in fleet["scale_events"]] == ["spawn"]
        assert fleet["audit"] == {"auth_failures": 2, "steals": 1}
        assert fleet["open_leases"] == []

    def test_version_bumps_only_on_change(self, tmp_path):
        spec = _spec()
        write_manifest(tmp_path, spec)
        view = CampaignView(tmp_path)
        v0 = view.version
        assert view.refresh() == 0
        assert view.version == v0
        with Journal(tmp_path) as journal:
            journal.append(_run(spec.points()[0].id, 0))
        assert view.refresh() == 1
        assert view.version == v0 + 1


class TestDrilldown:
    def test_point_detail_links_draws_and_artifacts(self, tmp_path):
        spec = _spec()
        write_manifest(tmp_path, spec)
        point = spec.points()[0].id
        with Journal(tmp_path) as journal:
            event = _run(point, 0)
            event["snapshot"] = "abc123"
            journal.append(event)
        os.makedirs(tmp_path / "bundles")
        (tmp_path / "bundles" / "fail.json").write_text("{}")
        view = CampaignView(tmp_path)
        view.refresh()
        detail = view.point_detail(point)
        assert detail["n"] == 1
        assert detail["draws"][0]["snapshot"] == "abc123"
        assert detail["artifacts"]["snapshots"] == ["abc123"]
        assert detail["artifacts"]["bundles"] == ["fail.json"]
        assert detail["convergence"]["n"] == 1
        assert view.point_detail("no/such/point") is None

    def test_convergence_series_tracks_halfwidth_per_draw(self, tmp_path):
        spec = _spec()
        write_manifest(tmp_path, spec)
        point = spec.points()[0].id
        with Journal(tmp_path) as journal:
            journal.append(_run(point, 0, overhead=0.1))
            journal.append(_run(point, 1, overhead=0.2))
        view = CampaignView(tmp_path)
        view.refresh()
        conv = view.convergence(point)
        series = conv["halfwidths"]["perf_overhead"]
        assert series[0] is None  # n=1: infinite CI, JSON-safe
        assert series[1] is not None and series[1] > 0

    def test_fork_spec_restricts_grid_to_one_point(self, tmp_path):
        spec = _spec()
        write_manifest(tmp_path, spec)
        point = spec.points()[1]
        view = CampaignView(tmp_path)
        fork = view.fork_spec(point.id)
        campaign = fork["campaign_spec"]
        assert campaign["benchmarks"] == [point.benchmark]
        assert campaign["schemes"] == [point.scheme.name]
        assert campaign["vdds"] == [point.vdd]
        assert campaign["n_instructions"] == spec.n_instructions
        # the re-emitted RunSpec round-trips through the bundle codec
        from repro.verify.bundle import spec_from_dict

        rebuilt = spec_from_dict(fork["run_spec"])
        assert rebuilt.benchmark == point.benchmark
        assert rebuilt.vdd == point.vdd
        assert "campaign plan" in fork["cli"]

    def test_fork_spec_is_plannable(self, tmp_path):
        """The forked spec feeds CampaignSpec.from_dict and validates."""
        spec = _spec()
        write_manifest(tmp_path, spec)
        view = CampaignView(tmp_path)
        fork = view.fork_spec(spec.points()[0].id)
        forked = CampaignSpec.from_dict(fork["campaign_spec"]).validate()
        assert len(forked.points()) == 1

    def test_telemetry_rows_surface_summaries(self, tmp_path):
        spec = _spec()
        write_manifest(tmp_path, spec)
        point = spec.points()[0].id
        with Journal(tmp_path) as journal:
            event = _run(point, 0)
            event["telemetry"] = {
                "interval": 100, "windows": 5,
                "ipc": {"min": 0.9, "mean": 1.0, "max": 1.1},
                "dropped_events": 3,
            }
            journal.append(event)
            journal.append(_run(point, 1))  # telemetry-free draw
        view = CampaignView(tmp_path)
        view.refresh()
        telem = view.telemetry(point)
        assert telem["interval"] == 100
        assert len(telem["rows"]) == 1
        assert telem["rows"][0]["ipc"]["mean"] == 1.0
        assert telem["rows"][0]["dropped_events"] == 3
