"""--follow mode: live terminal rendering on the watcher substrate."""

import io

from repro.campaign.journal import Journal, write_manifest
from repro.campaign.plan import CampaignSpec
from repro.dashboard.follow import follow_status, render_fleet_lines
from repro.fleet.ledger import LeaseLedger


def _spec():
    return CampaignSpec(
        name="fol", benchmarks=["astar"], schemes=["EP"], vdds=[0.97],
        seeds=[1, 2], n_instructions=500, warmup=250,
    )


def _run(point, index):
    return {
        "event": "run", "point": point, "index": index, "seed": index,
        "metrics": {"perf_overhead": 0.1, "ed_overhead": 0.2, "ipc": 1.0,
                    "fault_rate": 0.01, "replay_rate": 0.0},
        "counts": {"faults": 5, "replays": 0, "committed": 500},
    }


class TestFollow:
    def test_renders_once_and_stops_at_max_updates(self, tmp_path):
        spec = _spec()
        write_manifest(tmp_path, spec)
        with Journal(tmp_path) as journal:
            journal.append(_run(spec.points()[0].id, 0))
        out = io.StringIO()
        code = follow_status(tmp_path, interval=0.01, max_updates=1,
                             stream=out)
        assert code == 0
        text = out.getvalue()
        assert "campaign 'fol'" in text
        assert "1 draws journaled" in text
        assert "\x1b[" not in text  # non-tty stream: no ANSI control

    def test_exits_when_campaign_completes(self, tmp_path):
        spec = _spec()
        write_manifest(tmp_path, spec)
        point = spec.points()[0].id
        with Journal(tmp_path) as journal:
            journal.append(_run(point, 0))
            journal.append({"event": "point", "point": point, "n": 1,
                            "stopped": "ci", "summary": {}})
            journal.append({"event": "done"})
        out = io.StringIO()
        # no max_updates: termination comes from the done event alone
        assert follow_status(tmp_path, interval=0.01, stream=out) == 0
        assert "complete=true" in out.getvalue()

    def test_fleet_mode_renders_ledger_and_audit(self, tmp_path):
        spec = _spec()
        write_manifest(tmp_path, spec)
        ledger = LeaseLedger(tmp_path)
        ledger.granted(1, "p", [0], "w1")
        ledger.completed(1)
        ledger.audited({"auth_failures": 4})
        out = io.StringIO()
        follow_status(tmp_path, fleet=True, interval=0.01, max_updates=1,
                      stream=out)
        text = out.getvalue()
        assert "worker w1" in text
        assert "auth_failures=4" in text

    def test_ansi_redraw_when_forced(self, tmp_path):
        spec = _spec()
        write_manifest(tmp_path, spec)
        out = io.StringIO()
        follow_status(tmp_path, interval=0.01, max_updates=1, stream=out,
                      ansi=True)
        assert out.getvalue().startswith("\x1b[H\x1b[J")

    def test_cli_campaign_status_follow(self, tmp_path, capsys):
        from repro.harness.cli import main

        spec = _spec()
        write_manifest(tmp_path, spec)
        point = spec.points()[0].id
        with Journal(tmp_path) as journal:
            journal.append({"event": "point", "point": point, "n": 1,
                            "stopped": "ci", "summary": {}})
            journal.append({"event": "done"})
        code = main(["campaign", "status", "--dir", str(tmp_path),
                     "--follow", "--interval", "0.01"])
        assert code == 0
        assert "complete=true" in capsys.readouterr().out

    def test_cli_fleet_status_follow_requires_dir(self, capsys):
        from repro.harness.cli import main

        code = main(["fleet", "status", "--follow",
                     "--connect", "127.0.0.1:1"])
        assert code == 2
        assert "--dir" in capsys.readouterr().err

    def test_cli_fleet_status_follow(self, tmp_path, capsys):
        from repro.harness.cli import main

        spec = _spec()
        write_manifest(tmp_path, spec)
        point = spec.points()[0].id
        with Journal(tmp_path) as journal:
            journal.append({"event": "point", "point": point, "n": 1,
                            "stopped": "ci", "summary": {}})
            journal.append({"event": "done"})
        LeaseLedger(tmp_path).audited({"rejected_versions": 1})
        code = main(["fleet", "status", "--dir", str(tmp_path),
                     "--follow", "--interval", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "complete=true" in out
        assert "rejected_versions=1" in out


class TestRenderFleetLines:
    def test_counts_and_open_leases(self):
        lines = render_fleet_lines({
            "workers": {"w": {"draws": 3, "granted": 2, "completed": 1,
                              "revoked": 1, "stolen_from": 0}},
            "open_leases": [{"lease": 5}],
            "leases_granted": 2, "leases_completed": 1,
            "leases_revoked": 1, "steals": [], "scale_events": [],
            "audit": None,
        })
        assert "2 granted" in lines[0]
        assert "1 open" in lines[0]
        assert any("worker w" in line for line in lines)
