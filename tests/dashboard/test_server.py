"""DashboardServer: HTTP endpoints, SSE fan-out, artifact safety."""

import asyncio
import json
import os

import pytest

from repro.campaign.journal import Journal, write_manifest
from repro.campaign.plan import CampaignSpec
from repro.dashboard.server import ENDPOINT_NAME, DashboardServer


def _spec():
    return CampaignSpec(
        name="srv", benchmarks=["astar"], schemes=["EP", "ABS"],
        vdds=[0.97], seeds=[1, 2], n_instructions=500, warmup=250,
    )


def _run(point, index):
    return {
        "event": "run", "point": point, "index": index, "seed": index,
        "metrics": {"perf_overhead": 0.1, "ed_overhead": 0.2, "ipc": 1.0,
                    "fault_rate": 0.01, "replay_rate": 0.0},
        "counts": {"faults": 5, "replays": 0, "committed": 500},
    }


def _populate(directory, spec):
    write_manifest(directory, spec)
    point = spec.points()[0].id
    with Journal(directory) as journal:
        journal.append(_run(point, 0))
        journal.append(_run(point, 1))
    return point


async def _get(server, path):
    reader, writer = await asyncio.open_connection(
        server.host, server.port
    )
    writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    data = await reader.read()
    writer.close()
    head, _, body = data.partition(b"\r\n\r\n")
    return int(head.split()[1]), body


async def _get_json(server, path):
    status, body = await _get(server, path)
    return status, json.loads(body)


class _SseClient:
    """A minimal Server-Sent-Events reader over a raw socket."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, server):
        reader, writer = await asyncio.open_connection(
            server.host, server.port
        )
        writer.write(b"GET /events HTTP/1.1\r\nHost: t\r\n\r\n")
        await writer.drain()
        await reader.readuntil(b"\r\n\r\n")  # response headers
        return cls(reader, writer)

    async def next_event(self):
        """(event, payload) of the next non-comment SSE block."""
        while True:
            event, data = None, []
            while True:
                line = (await self.reader.readline()).decode().rstrip("\n")
                if not line.strip("\r"):
                    break
                if line.startswith("event: "):
                    event = line[len("event: "):]
                elif line.startswith("data: "):
                    data.append(line[len("data: "):])
            if event is not None:
                return event, json.loads("\n".join(data))

    def close(self):
        self.writer.close()


def _serve(directory, coro, poll_interval=0.05):
    """Run ``coro(server)`` against a started DashboardServer."""
    async def go():
        server = await DashboardServer(
            directory, poll_interval=poll_interval
        ).start()
        try:
            return await coro(server)
        finally:
            await server.stop()

    return asyncio.run(go())


class TestEndpoints:
    def test_api_surface_returns_valid_json(self, tmp_path):
        spec = _spec()
        point = _populate(tmp_path, spec)

        async def go(server):
            results = {}
            for path in ("/api/status", "/api/points", "/api/fleet",
                         "/api/figures", "/healthz",
                         f"/api/point/{point}", f"/api/telemetry/{point}",
                         f"/api/fork/{point}"):
                results[path] = await _get_json(server, path)
            return results

        results = _serve(tmp_path, go)
        for path, (status, payload) in results.items():
            assert status == 200, path
            assert isinstance(payload, dict), path
        assert results["/api/status"][1]["runs_total"] == 2
        assert results["/api/points"][1]["points"][0]["metrics"]
        assert results[f"/api/point/{point}"][1]["n"] == 2
        assert results[f"/api/fork/{point}"][1]["campaign_spec"]
        assert results["/healthz"][1]["ok"] is True

    def test_index_serves_html_and_unknowns_404(self, tmp_path):
        _populate(tmp_path, _spec())

        async def go(server):
            return (await _get(server, "/"),
                    await _get(server, "/api/nope"),
                    await _get(server, "/api/point/not/a/point"))

        (s_index, body), (s_nope, _), (s_point, _) = _serve(tmp_path, go)
        assert s_index == 200 and b"<!DOCTYPE html>" in body
        assert s_nope == 404
        assert s_point == 404

    def test_endpoint_file_advertises_bound_port(self, tmp_path):
        _populate(tmp_path, _spec())

        async def go(server):
            endpoint = json.load(open(tmp_path / ENDPOINT_NAME))
            assert endpoint["port"] == server.port
            return True

        assert _serve(tmp_path, go)
        # removed again on stop
        assert not os.path.exists(tmp_path / ENDPOINT_NAME)

    def test_status_matches_offline_tool_bytewise(self, tmp_path):
        from repro.campaign.status import build_status

        _populate(tmp_path, _spec())

        async def go(server):
            return await _get_json(server, "/api/status")

        _, served = _serve(tmp_path, go)
        offline = json.loads(json.dumps(build_status(tmp_path)))
        assert served == offline


class TestArtifacts:
    def test_bundle_download_and_traversal_rejection(self, tmp_path):
        _populate(tmp_path, _spec())
        os.makedirs(tmp_path / "bundles")
        (tmp_path / "bundles" / "fail.json").write_text('{"x": 1}')

        async def go(server):
            ok = await _get(server, "/artifact/bundles/fail.json")
            esc = await _get(server, "/artifact/bundles/../manifest.json")
            dot = await _get(server, "/artifact/bundles/.hidden")
            kind = await _get(server, "/artifact/secrets/fail.json")
            return ok, esc, dot, kind

        ok, esc, dot, kind = _serve(tmp_path, go)
        assert ok[0] == 200 and ok[1] == b'{"x": 1}'
        assert esc[0] == 404
        assert dot[0] == 404
        assert kind[0] == 404


class TestLiveUpdates:
    def test_append_reaches_sse_and_api_within_2s(self, tmp_path):
        """The acceptance bound: append -> /api/points + SSE < 2 s."""
        spec = _spec()
        point = _populate(tmp_path, spec)

        async def go(server):
            client = await _SseClient.connect(server)
            event, snapshot = await asyncio.wait_for(
                client.next_event(), timeout=2.0
            )
            assert event == "snapshot"
            assert snapshot["runs_total"] == 2
            with Journal(tmp_path) as journal:
                journal.append(_run(spec.points()[1].id, 0))
            event, update = await asyncio.wait_for(
                client.next_event(), timeout=2.0
            )
            assert event == "update"
            assert update["runs_total"] == 3
            _, points = await _get_json(server, "/api/points")
            assert points["runs_total"] == 3
            client.close()
            return True

        assert _serve(tmp_path, go)

    def test_eight_concurrent_sse_clients_all_receive_update(
        self, tmp_path
    ):
        spec = _spec()
        _populate(tmp_path, spec)

        async def go(server):
            clients = [
                await _SseClient.connect(server) for _ in range(8)
            ]
            for client in clients:
                event, _ = await asyncio.wait_for(
                    client.next_event(), timeout=2.0
                )
                assert event == "snapshot"
            assert server.n_clients == 8
            with Journal(tmp_path) as journal:
                journal.append(_run(spec.points()[1].id, 0))
            updates = await asyncio.wait_for(
                asyncio.gather(*(c.next_event() for c in clients)),
                timeout=2.0,
            )
            for event, payload in updates:
                assert event == "update"
                assert payload["runs_total"] == 3
            for client in clients:
                client.close()
            return True

        assert _serve(tmp_path, go)

    def test_figures_cache_rebuilds_only_on_change(self, tmp_path):
        _populate(tmp_path, _spec())

        async def go(server):
            await _get_json(server, "/api/figures")
            await _get_json(server, "/api/figures")
            await _get_json(server, "/api/figures")
            return server.figures.rebuilds

        assert _serve(tmp_path, go) == 1


class TestRobustness:
    def test_malformed_request_line_is_rejected(self, tmp_path):
        _populate(tmp_path, _spec())

        async def go(server):
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.write(b"garbage\r\n\r\n")
            await writer.drain()
            data = await reader.read()
            writer.close()
            return data

        data = _serve(tmp_path, go)
        assert b"400" in data.split(b"\r\n", 1)[0]

    def test_post_rejected(self, tmp_path):
        _populate(tmp_path, _spec())

        async def go(server):
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.write(b"POST /api/points HTTP/1.1\r\nHost: t\r\n\r\n")
            await writer.drain()
            data = await reader.read()
            writer.close()
            return data

        data = _serve(tmp_path, go)
        assert b"405" in data.split(b"\r\n", 1)[0]

    def test_serve_requires_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            asyncio.run(DashboardServer(tmp_path / "missing").start())
