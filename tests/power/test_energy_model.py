"""Energy model: scaling laws, accounting, EDP."""

import pytest

from repro.faults.timing import VDD_HIGH_FAULT, VDD_NOMINAL
from repro.isa.opcodes import OpClass
from repro.power.energy_model import EnergyBreakdown, EnergyModel
from repro.uarch.stats import SimStats


def _stats(cycles=100, committed=80):
    stats = SimStats()
    stats.cycles = cycles
    stats.committed = committed
    stats.fetched = committed
    stats.dispatched = committed
    stats.issued = committed
    stats.regreads = committed
    stats.regwrites = committed // 2
    stats.wb_writes = committed
    stats.broadcasts = committed // 2
    stats.broadcast_occupancy = committed * 8
    stats.lsq_searches = committed // 4
    stats.fu_ops = {OpClass.IALU: committed}
    return stats


def _cache_stats(**overrides):
    base = {
        "l1i_hits": 50, "l1i_misses": 2,
        "l1d_hits": 30, "l1d_misses": 3,
        "l2_hits": 4, "l2_misses": 1,
        "mem_accesses": 1,
    }
    base.update(overrides)
    return base


def test_total_is_dynamic_plus_leakage():
    breakdown = EnergyModel().evaluate(_stats(), _cache_stats())
    assert breakdown.total == pytest.approx(
        breakdown.dynamic + breakdown.leakage
    )
    assert breakdown.dynamic > 0 and breakdown.leakage > 0


def test_edp_is_energy_times_cycles():
    breakdown = EnergyModel().evaluate(_stats(cycles=123), _cache_stats())
    assert breakdown.edp == pytest.approx(breakdown.total * 123)


def test_voltage_scaling_laws():
    assert EnergyModel.dynamic_scale(VDD_NOMINAL) == pytest.approx(1.0)
    assert EnergyModel.dynamic_scale(VDD_HIGH_FAULT) == pytest.approx(
        (VDD_HIGH_FAULT / VDD_NOMINAL) ** 2
    )
    assert EnergyModel.leakage_scale(VDD_HIGH_FAULT) == pytest.approx(
        VDD_HIGH_FAULT / VDD_NOMINAL
    )


def test_lower_voltage_reduces_energy():
    model = EnergyModel()
    nominal = model.evaluate(_stats(), _cache_stats(), vdd=VDD_NOMINAL)
    lowered = model.evaluate(_stats(), _cache_stats(), vdd=VDD_HIGH_FAULT)
    assert lowered.total < nominal.total


def test_extra_cycles_cost_leakage_only():
    model = EnergyModel()
    short = model.evaluate(_stats(cycles=100), _cache_stats())
    long = model.evaluate(_stats(cycles=200), _cache_stats())
    assert long.leakage == pytest.approx(2 * short.leakage)
    assert long.dynamic == pytest.approx(short.dynamic)


def test_tep_energy_only_when_enabled():
    model = EnergyModel()
    without = model.evaluate(_stats(), _cache_stats(), uses_tep=False)
    with_tep = model.evaluate(_stats(), _cache_stats(), uses_tep=True)
    assert with_tep.dynamic > without.dynamic
    # and it is a small predictor (Section S3): well under 1% of dynamic
    assert (with_tep.dynamic - without.dynamic) / without.dynamic < 0.01


def test_memory_accesses_dominate_cache_energy():
    model = EnergyModel()
    few = model.evaluate(_stats(), _cache_stats(mem_accesses=0))
    many = model.evaluate(_stats(), _cache_stats(mem_accesses=50))
    assert many.dynamic > few.dynamic + 10_000 * 0  # strictly larger
    delta = many.dynamic - few.dynamic
    assert delta == pytest.approx(50 * model.event_energy["mem"], rel=1e-6)


def test_event_energy_overrides():
    model = EnergyModel(event_energy={"fetch": 100.0})
    assert model.event_energy["fetch"] == 100.0
    assert model.event_energy["decode"] > 0  # defaults retained


def test_breakdown_repr():
    text = repr(EnergyBreakdown(10.0, 5.0, 7, 1.1))
    assert "15.0" in text and "cycles=7" in text
