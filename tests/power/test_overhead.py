"""VTE scheduler overhead model (Table 2)."""

import pytest

from repro.power.overhead import (
    OverheadReport,
    SchedulerOverheadModel,
    SCHEDULER_CORE_AREA_FRACTION,
)


@pytest.fixture(scope="module")
def model():
    return SchedulerOverheadModel()


def test_abs_and_ffs_identical(model):
    assert model.report("ABS").area == model.report("FFS").area
    assert model.report("ABS").leakage == model.report("FFS").leakage


def test_cds_costs_more_than_abs(model):
    abs_report = model.report("ABS")
    cds_report = model.report("CDS")
    assert cds_report.area > abs_report.area
    assert cds_report.dynamic > abs_report.dynamic
    assert cds_report.leakage > abs_report.leakage


def test_overheads_in_paper_magnitude(model):
    # Table 2: ABS/FFS under ~3% of the scheduler, CDS a few percent
    abs_report = model.report("ABS")
    cds_report = model.report("CDS")
    assert 0.001 < abs_report.area < 0.04
    assert 0.01 < cds_report.area < 0.12
    assert abs_report.dynamic < 0.02
    assert cds_report.dynamic < 0.05


def test_core_level_scaling(model):
    sched = model.report("CDS")
    core = sched.core_level()
    assert core.area == pytest.approx(
        sched.area * SCHEDULER_CORE_AREA_FRACTION
    )
    # core-level overheads are tiny, as in the paper (<= 0.25%)
    assert core.area < 0.0035
    assert core.dynamic < 0.0035
    assert core.leakage < 0.0035


def test_unknown_scheme_raises(model):
    with pytest.raises(ValueError):
        model.report("RAZOR")


def test_table2_rows(model):
    rows = model.table2()
    assert [r[0] for r in rows] == ["ABS", "FFS", "CDS"]
    for _, sched, core in rows:
        assert isinstance(sched, OverheadReport)
        assert core.area < sched.area


def test_baseline_dominated_by_cam_and_payload(model):
    structures = {s.name: s for s in model.baseline_structures()}
    assert "wakeup_cam" in structures and "payload" in structures
    total = sum(s.area for s in structures.values())
    big_two = structures["wakeup_cam"].area + structures["payload"].area
    assert big_two / total > 0.5


def test_criticality_threshold_configurable():
    small = SchedulerOverheadModel(criticality_threshold=2)
    assert small.report("CDS").area > 0
