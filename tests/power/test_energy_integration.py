"""End-to-end energy behaviour across schemes and operating points."""

import pytest

from repro.core.schemes import SchemeKind
from repro.harness.runner import RunSpec, run_one

_FAST = dict(n_instructions=2000, warmup=1000)


def test_razor_replays_burn_energy():
    base = run_one(RunSpec("sjeng", SchemeKind.FAULT_FREE, 0.97, **_FAST))
    razor = run_one(RunSpec("sjeng", SchemeKind.RAZOR, 0.97, **_FAST))
    assert razor.energy.total > base.energy.total
    # and EDP compounds: energy x delay grows faster than either
    assert razor.edp / base.edp > razor.energy.total / base.energy.total


def test_ep_stalls_cost_mostly_leakage():
    base = run_one(RunSpec("astar", SchemeKind.FAULT_FREE, 1.04, **_FAST))
    ep = run_one(RunSpec("astar", SchemeKind.EP, 1.04, **_FAST))
    extra_leak = ep.energy.leakage - base.energy.leakage
    extra_dyn = ep.energy.dynamic - base.energy.dynamic
    assert extra_leak > 0
    # stalls add cycles (leakage), not computation: leakage dominates the
    # energy delta
    assert extra_leak > extra_dyn


def test_lower_voltage_saves_energy_at_equal_work():
    high = run_one(RunSpec("gcc", SchemeKind.FAULT_FREE, 1.10, **_FAST))
    low = run_one(RunSpec("gcc", SchemeKind.FAULT_FREE, 1.04, **_FAST))
    # identical instruction stream, fewer millivolts: strictly less energy
    assert low.energy.dynamic < high.energy.dynamic
    assert low.energy.total < high.energy.total


def test_abs_preserves_most_of_the_voltage_saving():
    nominal = run_one(RunSpec("gcc", SchemeKind.FAULT_FREE, 1.10, **_FAST))
    abs_low = run_one(RunSpec("gcc", SchemeKind.ABS, 1.04, **_FAST))
    razor_low = run_one(RunSpec("gcc", SchemeKind.RAZOR, 1.04, **_FAST))
    # the paper's pitch: cheap tolerance keeps undervolting profitable
    assert abs_low.edp < razor_low.edp
    assert abs_low.energy.total < nominal.energy.total


def test_scheme_energy_ordering_matches_performance():
    base = run_one(RunSpec("gobmk", SchemeKind.FAULT_FREE, 0.97, **_FAST))
    results = {
        kind: run_one(RunSpec("gobmk", kind, 0.97, **_FAST))
        for kind in (SchemeKind.RAZOR, SchemeKind.EP, SchemeKind.ABS)
    }
    ed = {k: r.ed_overhead(base) for k, r in results.items()}
    assert ed[SchemeKind.ABS] < ed[SchemeKind.EP] < ed[SchemeKind.RAZOR]


def test_energy_breakdown_components_positive():
    result = run_one(RunSpec("mcf", SchemeKind.FAULT_FREE, 1.10, **_FAST))
    assert result.energy.dynamic > 0
    assert result.energy.leakage > 0
    assert result.energy.cycles == result.cycles


def test_memory_bound_code_spends_more_energy_per_instruction():
    mcf = run_one(RunSpec("mcf", SchemeKind.FAULT_FREE, 1.10, **_FAST))
    dense = run_one(RunSpec("dense_alu", SchemeKind.FAULT_FREE, 1.10, **_FAST))
    per_inst_mcf = mcf.energy.total / mcf.stats.committed
    per_inst_dense = dense.energy.total / dense.stats.committed
    assert per_inst_mcf > per_inst_dense  # DRAM accesses + stall leakage
