"""Store-set memory dependence prediction."""

import pytest

from repro.core.schemes import SchemeKind
from repro.isa.instruction import StaticInst
from repro.isa.opcodes import OpClass
from repro.isa.program import BasicBlock, Program
from repro.uarch.config import CoreConfig
from repro.uarch.memdep import StoreSetPredictor

from tests.conftest import make_core


class TestPredictorTables:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            StoreSetPredictor(n_ssit=100)
        with pytest.raises(ValueError):
            StoreSetPredictor(n_lfst=0)

    def test_untrained_loads_never_wait(self):
        ssp = StoreSetPredictor()
        assert ssp.must_wait_for(0x1000) is None

    def test_violation_creates_shared_set(self):
        ssp = StoreSetPredictor()
        ssp.train_violation(0x1000, 0x2000)
        assert ssp.set_of(0x1000) is not None
        assert ssp.set_of(0x1000) == ssp.set_of(0x2000)

    def test_load_waits_for_in_flight_store(self):
        ssp = StoreSetPredictor()
        ssp.train_violation(0x1000, 0x2000)
        ssp.store_fetched(0x2000, seq=42)
        assert ssp.must_wait_for(0x1000) == 42
        ssp.store_resolved(0x2000, seq=42)
        assert ssp.must_wait_for(0x1000) is None

    def test_older_store_not_lost_behind_newer_one(self):
        # the classic LFST pitfall: a newer same-set store must not erase
        # the load's dependency on a still-unresolved older store
        ssp = StoreSetPredictor()
        ssp.train_violation(0x1000, 0x2000)
        ssp.store_fetched(0x2000, seq=42)
        ssp.store_fetched(0x2000, seq=50)
        assert ssp.must_wait_for(0x1000, load_seq=45) == 42
        ssp.store_resolved(0x2000, seq=42)
        assert ssp.must_wait_for(0x1000, load_seq=45) is None
        assert ssp.must_wait_for(0x1000, load_seq=60) == 50

    def test_set_merging(self):
        ssp = StoreSetPredictor()
        ssp.train_violation(0x1000, 0x2000)
        ssp.train_violation(0x3000, 0x4000)
        ssp.train_violation(0x1000, 0x4000)  # merges the two sets
        assert ssp.set_of(0x1000) == ssp.set_of(0x4000)

    def test_reset(self):
        ssp = StoreSetPredictor()
        ssp.train_violation(0x1000, 0x2000)
        ssp.reset()
        assert ssp.set_of(0x1000) is None
        assert ssp.violations == 0


def _aliasing_program():
    """A loop where a store and a later load hit the same fixed address,
    with the store's address depending on a slow divide (so speculation
    past it is tempting and wrong)."""
    insts = [
        StaticInst(0x1000, OpClass.IDIV, dest=1, srcs=(1,)),
        StaticInst(0x1004, OpClass.STORE, srcs=(1,),
                   mem_base=0x800, mem_stride=0, mem_region=0),
        StaticInst(0x1008, OpClass.LOAD, dest=2, srcs=(),
                   mem_base=0x800, mem_stride=0, mem_region=0),
        StaticInst(0x100C, OpClass.IALU, dest=3, srcs=(2,)),
        StaticInst(0x1010, OpClass.BRANCH, srcs=(), taken_prob=0.0),
    ]
    return Program([BasicBlock(0, insts, [(0, 1.0)])], name="alias")


class TestPipelineIntegration:
    def test_speculation_lifts_ipc_on_memory_codes(self):
        from repro.workloads.generator import build_program
        from repro.workloads.profiles import get_profile

        program = build_program(get_profile("xalancbmk"), seed=1)
        conservative = make_core(program).run(2500)
        program2 = build_program(get_profile("xalancbmk"), seed=1)
        speculative = make_core(
            program2,
            config=CoreConfig.core1(mem_dependence="store_sets"),
        ).run(2500)
        assert speculative.ipc > conservative.ipc

    def test_aliasing_load_violates_then_synchronizes(self):
        core = make_core(
            _aliasing_program(),
            config=CoreConfig.core1(mem_dependence="store_sets"),
        )
        stats = core.run(800)
        # the first speculation past the divide-dependent store misfires...
        assert stats.memdep_violations >= 1
        # ...but training synchronizes the pair: violations stay rare
        assert stats.memdep_violations < 10
        assert core.memdep.set_of(0x1008) is not None
        assert core.memdep.set_of(0x1008) == core.memdep.set_of(0x1004)

    def test_conservative_mode_never_violates(self):
        core = make_core(_aliasing_program())
        stats = core.run(800)
        assert stats.memdep_violations == 0

    def test_correctness_repair_is_flush(self):
        core = make_core(
            _aliasing_program(),
            config=CoreConfig.core1(mem_dependence="store_sets"),
        )
        stats = core.run(800)
        if stats.memdep_violations:
            assert stats.squashed > 0  # ordering repair flushes

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CoreConfig.core1(mem_dependence="oracle")
