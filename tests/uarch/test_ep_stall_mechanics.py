"""Whole-pipeline stall mechanics (`_shift_in_flight` and consumption)."""

from repro.uarch.regfile import INFINITE

from tests.conftest import make_core


def _core_at_cycle(cycle=100):
    core = make_core()
    core.cycle = cycle
    return core


def test_consume_returns_false_without_pending():
    core = _core_at_cycle()
    assert core._consume_ep_stall() is False
    assert core.stats.ep_stalls == 0


def test_single_stall_consumed_once():
    core = _core_at_cycle(50)
    core._ep_stalls[50] = 1
    assert core._consume_ep_stall() is True
    assert core.stats.ep_stalls == 1
    assert 50 not in core._ep_stalls


def test_multiple_stalls_serialize():
    core = _core_at_cycle(50)
    core._ep_stalls[50] = 3
    assert core._consume_ep_stall() is True
    # the remaining two shifted to the next cycle
    assert core._ep_stalls == {51: 2}


def test_shift_moves_future_events_only():
    core = _core_at_cycle(50)
    inst_like = type("I", (), {"squashed": False, "version": 0})()
    core._events = {49: ["past"], 50: [("k", inst_like, 0)], 60: ["future"]}
    core._shift_in_flight()
    assert core._events == {49: ["past"], 51: [("k", inst_like, 0)],
                            61: ["future"]}


def test_shift_delays_pending_broadcasts():
    core = _core_at_cycle(50)
    core.rename.set_ready(40, 45)   # already visible
    core.rename.set_ready(41, 55)   # in flight
    core._shift_in_flight()
    assert core.rename.ready_cycle[40] == 45
    assert core.rename.ready_cycle[41] == 56
    assert core.rename.ready_cycle[50] == INFINITE


def test_shift_delays_fu_reservations():
    core = _core_at_cycle(50)
    unit = core.fus.units[next(iter(core.fus.units))][0]
    unit.next_issue = 55
    core._shift_in_flight()
    assert unit.next_issue == 56


def test_shift_delays_writeback_reservations():
    core = _core_at_cycle(50)
    core._wb_count = {49: 2, 55: 4}
    core._shift_in_flight()
    assert core._wb_count == {49: 2, 56: 4}


def test_shift_delays_fetch_resume():
    core = _core_at_cycle(50)
    core._fetch_resume_at = 58
    core._shift_in_flight()
    assert core._fetch_resume_at == 59


def test_stall_cycle_freezes_commit_and_fetch():
    # end-to-end: inject a stall mid-run and confirm the cycle count
    # grows by exactly the stall count on an otherwise identical run
    core_a = make_core(seed=5)
    core_b = make_core(seed=5)
    core_a.run(300)
    core_b._ep_stalls[40] = 7
    core_b.run(300)
    assert core_b.stats.cycles == core_a.stats.cycles + 7
