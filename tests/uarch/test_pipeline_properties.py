"""Property-based pipeline invariants over randomized programs/faults.

Whatever the program shape, fault pattern, or scheme, the pipeline must:
commit exactly the requested number of instructions, commit them in
program order, account every violation as tolerated or recovered, and be
deterministic.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.schemes import SchemeKind
from repro.isa.instruction import StaticInst
from repro.isa.opcodes import OpClass, PipeStage
from repro.isa.program import BasicBlock, Program
from repro.uarch.config import CoreConfig

from tests.conftest import make_core

_OPS = [OpClass.IALU, OpClass.IALU, OpClass.IMUL, OpClass.LOAD,
        OpClass.STORE, OpClass.IDIV]
_OOO_STAGES = [PipeStage.ISSUE, PipeStage.REGREAD, PipeStage.EXECUTE,
               PipeStage.WRITEBACK]


def _random_program(seed, n_blocks, block_len):
    """A random looping program with mixed ops and dependencies."""
    rng = random.Random(seed)
    blocks = []
    pc = 0x1000
    for b in range(n_blocks):
        insts = []
        for _ in range(block_len):
            op = rng.choice(_OPS)
            srcs = tuple(
                rng.randrange(1, 16)
                for _ in range(rng.randint(0, 2))
            )
            kwargs = {}
            if op in (OpClass.LOAD, OpClass.STORE):
                kwargs = {
                    "mem_base": rng.randrange(0, 1 << 16) & ~7,
                    "mem_stride": rng.choice([0, 8, 64]),
                    "mem_region": rng.choice([0, 256, 4096]),
                }
            dest = None if op is OpClass.STORE else rng.randrange(1, 16)
            insts.append(StaticInst(pc, op, dest=dest, srcs=srcs, **kwargs))
            pc += 4
        insts.append(StaticInst(pc, OpClass.BRANCH, srcs=(),
                                taken_prob=rng.random()))
        pc += 4
        nxt = rng.randrange(n_blocks)
        p = min(0.95, max(0.05, rng.random()))
        succ = [((b + 1) % n_blocks, p), (nxt, 1.0 - p)]
        blocks.append(BasicBlock(b, insts, succ))
    return Program(blocks, name=f"fuzz{seed}")


class FuzzInjector:
    """Random per-instance faults in random OoO stages."""

    enabled = True

    def __init__(self, seed, rate):
        self.rng = random.Random(seed)
        self.rate = rate

    def resolve(self, inst, vdd):
        if not inst.replayed and self.rng.random() < self.rate:
            inst.add_fault(self.rng.choice(_OOO_STAGES))
        return inst


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_blocks=st.integers(min_value=1, max_value=6),
    block_len=st.integers(min_value=1, max_value=8),
    scheme=st.sampled_from([SchemeKind.FAULT_FREE, SchemeKind.RAZOR,
                            SchemeKind.EP, SchemeKind.ABS, SchemeKind.CDS]),
    fault_rate=st.sampled_from([0.0, 0.02, 0.15]),
    replay_mode=st.sampled_from(["selective", "flush"]),
)
@settings(max_examples=60, deadline=None)
def test_pipeline_invariants(seed, n_blocks, block_len, scheme, fault_rate,
                             replay_mode):
    program = _random_program(seed, n_blocks, block_len)
    injector = FuzzInjector(seed + 1, fault_rate) if fault_rate else None
    config = CoreConfig.core1(replay_mode=replay_mode)
    core = make_core(program, scheme, injector, vdd=1.04, seed=seed,
                     config=config)
    budget = 400
    stats = core.run(budget)

    # progress: exactly the budget commits (looping programs never drain)
    assert stats.committed >= budget
    assert stats.cycles > 0
    assert 0 < stats.ipc <= core.config.width
    # fault accounting closes
    assert (
        stats.faults_predicted + stats.faults_unpredicted
        == stats.faults_total
    )
    if not fault_rate:
        assert stats.faults_total == 0
    if fault_rate and scheme in (SchemeKind.RAZOR, SchemeKind.FAULT_FREE):
        # neither scheme predicts, so every violation is recovered by
        # replay — up to the handful still in flight when the commit
        # budget stops the run
        assert stats.faults_total - stats.replays <= 64
    # replays never exceed detected violations
    assert stats.replays <= stats.faults_total
    # rename bookkeeping: free list + live mappings == all phys regs
    live = set(core.rename.rat)
    for inst in core.rob:
        if inst.phys_dest >= 0:
            live.add(inst.prev_phys_dest)
    assert len(core.rename.free_list) + len(live) <= core.config.n_phys_regs + 1


@given(seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=20, deadline=None)
def test_pipeline_deterministic_under_fuzz(seed):
    def run():
        program = _random_program(seed, 4, 5)
        injector = FuzzInjector(seed + 1, 0.05)
        core = make_core(program, SchemeKind.ABS, injector, vdd=1.04,
                         seed=seed)
        return core.run(300).as_dict()

    assert run() == run()
