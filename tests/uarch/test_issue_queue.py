"""Issue queue: timestamps, wakeup readiness, dependent counting."""

import pytest

from repro.isa.instruction import DynInst, StaticInst
from repro.isa.opcodes import OpClass
from repro.uarch.issue_queue import IssueQueue, TIMESTAMP_MASK
from repro.uarch.lsq import LoadStoreQueue
from repro.uarch.regfile import RenameState


def _alu(seq, dest=1, srcs=()):
    return DynInst(seq, StaticInst(0x100 + 4 * seq, OpClass.IALU,
                                   dest=dest, srcs=srcs))


def _load(seq):
    return DynInst(seq, StaticInst(0x900 + 4 * seq, OpClass.LOAD, dest=2,
                                   srcs=(1,), mem_base=64, mem_region=0),
                   mem_addr=64)


def _store(seq):
    return DynInst(seq, StaticInst(0xA00 + 4 * seq, OpClass.STORE,
                                   srcs=(1,), mem_base=64, mem_region=0),
                   mem_addr=64)


@pytest.fixture
def rename():
    return RenameState(8, 32)


def test_rejects_bad_size():
    with pytest.raises(ValueError):
        IssueQueue(0)


def test_timestamps_wrap_modulo_64():
    iq = IssueQueue(4)
    for seq in range(70):
        inst = _alu(seq)
        iq.insert(inst)
        assert inst.timestamp == seq & TIMESTAMP_MASK
        iq.remove(inst)


def test_overflow_raises():
    iq = IssueQueue(1)
    iq.insert(_alu(0))
    with pytest.raises(RuntimeError):
        iq.insert(_alu(1))


def test_ready_entries_follow_scoreboard(rename):
    iq = IssueQueue(8)
    producer = _alu(0, dest=2)
    rename.rename(producer)
    consumer = _alu(1, dest=3, srcs=(2,))
    rename.rename(consumer)
    independent = _alu(2, dest=4, srcs=())
    rename.rename(independent)
    iq.insert(consumer)
    iq.insert(independent)
    assert iq.ready_entries(0, rename) == [independent]
    rename.set_ready(producer.phys_dest, 5)
    assert set(iq.ready_entries(5, rename)) == {consumer, independent}


def test_loads_wait_for_older_store_addresses(rename):
    iq = IssueQueue(8)
    lsq = LoadStoreQueue(8)
    store = _store(0)
    load = _load(1)
    rename.rename(store)
    rename.rename(load)
    rename.set_ready(rename.rat[1], 0)
    lsq.allocate(store)
    lsq.allocate(load)
    iq.insert(store)
    iq.insert(load)
    ready = iq.ready_entries(0, rename, lsq)
    assert store in ready and load not in ready
    lsq.resolve_address(store, 0)
    assert load in iq.ready_entries(0, rename, lsq)


def test_head_timestamp_is_oldest_entry(rename):
    iq = IssueQueue(8)
    insts = [_alu(seq) for seq in range(3)]
    for inst in insts:
        rename.rename(inst)
        iq.insert(inst)
    assert iq.head_timestamp() == insts[0].timestamp
    iq.remove(insts[0])
    assert iq.head_timestamp() == insts[1].timestamp


def test_head_timestamp_empty_queue():
    assert IssueQueue(4).head_timestamp() == 0


def test_count_dependents(rename):
    iq = IssueQueue(8)
    producer = _alu(0, dest=2)
    rename.rename(producer)
    tag = producer.phys_dest
    for seq in range(1, 4):
        consumer = _alu(seq, dest=3 + seq, srcs=(2,))
        rename.rename(consumer)
        iq.insert(consumer)
    other = _alu(9, dest=7, srcs=())
    rename.rename(other)
    iq.insert(other)
    assert iq.count_dependents(tag) == 3
    assert iq.count_dependents(-1) == 0


def test_squash_from_drops_young_entries(rename):
    iq = IssueQueue(8)
    insts = [_alu(seq) for seq in range(5)]
    for inst in insts:
        rename.rename(inst)
        iq.insert(inst)
    dropped = iq.squash_from(3)
    assert {i.seq for i in dropped} == {3, 4}
    assert len(iq) == 3
    assert all(not i.in_iq for i in dropped)
