"""Structural backpressure paths: tiny queues, register exhaustion."""

import pytest

from repro.uarch.config import CoreConfig

from tests.conftest import make_core, make_linear_program


def _mem_heavy_program():
    from repro.workloads.generator import build_program
    from repro.workloads.profiles import get_profile

    return build_program(get_profile("mcf"), seed=4)


def test_tiny_rob_still_makes_progress():
    core = make_core(config=CoreConfig(rob_size=8))
    stats = core.run(600)
    assert stats.committed >= 600


def test_tiny_iq_still_makes_progress():
    core = make_core(config=CoreConfig(iq_size=4))
    stats = core.run(600)
    assert stats.committed >= 600


def test_tiny_lsq_still_makes_progress():
    core = make_core(_mem_heavy_program(), config=CoreConfig(lsq_size=4))
    stats = core.run(600)
    assert stats.committed >= 600


def test_minimal_physical_registers():
    # 33 physical registers: exactly one rename in flight at a time
    core = make_core(config=CoreConfig(n_phys_regs=33))
    stats = core.run(400)
    assert stats.committed >= 400


def test_smaller_windows_cost_performance():
    big = make_core(make_linear_program()).run(1200)
    small = make_core(
        make_linear_program(), config=CoreConfig(rob_size=8, iq_size=4)
    ).run(1200)
    assert small.cycles >= big.cycles


def test_single_wide_machine():
    core = make_core(config=CoreConfig(width=1, n_simple_alu=1))
    stats = core.run(500)
    assert stats.committed >= 500
    assert stats.ipc <= 1.0


def test_core2_classmethod():
    config = CoreConfig.core2()
    assert config.width == 2
    assert config.iq_size == 16
    core = make_core(config=config)
    assert core.run(400).committed >= 400


def test_rejects_nonpositive_dimensions():
    with pytest.raises(ValueError):
        CoreConfig(width=0)
    with pytest.raises(ValueError):
        CoreConfig(n_phys_regs=16, n_arch_regs=32)
