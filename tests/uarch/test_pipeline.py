"""Pipeline integration: fault-free behaviour."""

import pytest

from repro.core.schemes import SchemeKind
from repro.isa.instruction import StaticInst
from repro.isa.opcodes import OpClass
from repro.isa.program import BasicBlock, Program
from repro.uarch.config import CoreConfig
from repro.uarch.pipeline import DeadlockError

from tests.conftest import make_core, make_linear_program


def _chain_program(length=8):
    """One looping block forming a dependence chain across iterations.

    Instruction i reads r(i+1) and writes r(i+2 mod length +1); with the
    default length the last instruction feeds the first of the next
    iteration, so the whole dynamic stream is one serial chain.
    """
    insts = []
    pc = 0x1000
    for i in range(length):
        src = (i % length) + 1
        dest = ((i + 1) % length) + 1
        insts.append(StaticInst(pc, OpClass.IALU, dest=dest, srcs=(src,)))
        pc += 4
    insts.append(StaticInst(pc, OpClass.BRANCH, srcs=(), taken_prob=0.0))
    return Program([BasicBlock(0, insts, [(0, 1.0)])], name="chain")


def test_runs_to_budget():
    core = make_core()
    stats = core.run(500)
    assert stats.committed >= 500
    assert stats.cycles > 0


def test_rejects_bad_budget():
    with pytest.raises(ValueError):
        make_core().run(0)


def test_ipc_bounded_by_width():
    core = make_core()
    stats = core.run(1000)
    assert 0 < stats.ipc <= core.config.width


def test_independent_alus_exceed_ipc_one():
    # 4 independent single-cycle ALU ops per block: with 2 simple ALUs the
    # core should sustain close to 2 IPC
    core = make_core(make_linear_program(n_blocks=2, block_len=5))
    stats = core.run(2000)
    assert stats.ipc > 1.3


def test_dependence_chain_limits_ipc_to_one():
    # 8 chained ALU ops + 1 independent branch per iteration: the chain
    # sustains one ALU per cycle, so IPC ~ 9/8
    core = make_core(_chain_program())
    stats = core.run(2000)
    assert stats.ipc <= 1.2


def test_deterministic_given_seed():
    a = make_core(seed=3).run(800).as_dict()
    b = make_core(seed=3).run(800).as_dict()
    assert a == b


def test_fault_free_run_has_no_faults():
    stats = make_core().run(500)
    assert stats.faults_total == 0
    assert stats.replays == 0
    assert stats.ep_stalls == 0


def test_commit_in_program_order():
    core = make_core()
    committed = []
    original = core.rob.commit_ready

    def spy(width):
        insts = original(width)
        committed.extend(i.seq for i in insts)
        return insts

    core.rob.commit_ready = spy
    core.run(300)
    assert committed == sorted(committed)


def test_finite_trace_drains():
    program = make_linear_program(n_blocks=3, block_len=4, loop=False)
    core = make_core(program)
    stats = core.run(10_000)  # budget far beyond the trace length
    assert stats.committed < 10_000
    assert core._drained()


def test_deadlock_guard_raises():
    core = make_core()
    with pytest.raises(DeadlockError):
        core.run(100, max_cycles=3)


def test_requires_tep_for_predictive_scheme(linear_program):
    from repro.core.schemes import make_scheme
    from repro.mem.hierarchy import MemoryHierarchy
    from repro.uarch.pipeline import OoOCore
    from repro.workloads.trace import TraceGenerator

    with pytest.raises(ValueError, match="TEP"):
        OoOCore(
            CoreConfig.core1(),
            TraceGenerator(linear_program),
            MemoryHierarchy(),
            make_scheme(SchemeKind.ABS),
        )


def test_stats_iq_occupancy_positive():
    stats = make_core().run(500)
    assert stats.avg_iq_occupancy > 0


def test_narrow_core_is_slower():
    wide = make_core(config=CoreConfig(width=4)).run(1500)
    narrow = make_core(config=CoreConfig(width=1, n_simple_alu=1)).run(1500)
    assert narrow.cycles > wide.cycles


def test_branch_mispredicts_cost_cycles():
    # identical structure, biased vs unbiased conditional branch
    def program(p_taken):
        insts = [
            StaticInst(0x1000 + 4 * i, OpClass.IALU, dest=i + 1, srcs=())
            for i in range(4)
        ]
        insts.append(
            StaticInst(0x1010, OpClass.BRANCH, srcs=(), taken_prob=p_taken)
        )
        blocks = [
            BasicBlock(0, insts, [(1, 1.0 - p_taken), (0, p_taken)]),
            # block 1 starts at the branch's fall-through PC, so "not
            # taken" really is a fall-through for the direction predictor
            BasicBlock(
                1,
                [StaticInst(0x1014, OpClass.BRANCH, srcs=(), taken_prob=0.0)],
                [(0, 1.0)],
            ),
        ]
        return Program(blocks, name=f"b{p_taken}")

    predictable = make_core(program(0.999), seed=9).run(3000)
    random_br = make_core(program(0.5), seed=9).run(3000)
    assert random_br.mispredict_rate > predictable.mispredict_rate
    assert random_br.cycles > predictable.cycles
