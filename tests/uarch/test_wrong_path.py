"""Wrong-path fetch energy accounting."""

from repro.power.energy_model import EnergyModel
from repro.uarch.config import CoreConfig

from tests.conftest import make_core
from tests.uarch.test_pipeline import _chain_program


def _branchy_core(model_wrong_path):
    from repro.workloads.generator import build_program
    from repro.workloads.profiles import get_profile

    program = build_program(get_profile("branchy"), seed=2)
    return make_core(
        program,
        config=CoreConfig.core1(model_wrong_path=model_wrong_path),
    )


def test_mispredicts_accumulate_wrong_path_work():
    core = _branchy_core(True)
    stats = core.run(1500)
    assert stats.branch_mispredicts > 0
    assert stats.wrong_path_fetched > 0
    # bounded by the mispredict loop depth per event
    assert stats.wrong_path_fetched < stats.branch_mispredicts * 20 * 4


def test_disabled_by_config():
    core = _branchy_core(False)
    stats = core.run(1500)
    assert stats.wrong_path_fetched == 0


def test_wrong_path_costs_energy_not_time():
    on = _branchy_core(True).run(1500)
    off = _branchy_core(False).run(1500)
    assert on.cycles == off.cycles  # timing identical
    cache = {
        "l1i_hits": 0, "l1i_misses": 0, "l1d_hits": 0, "l1d_misses": 0,
        "l2_hits": 0, "l2_misses": 0, "mem_accesses": 0,
    }
    model = EnergyModel()
    assert model.evaluate(on, cache).dynamic > model.evaluate(off, cache).dynamic


def test_predictable_code_wastes_nothing():
    core = make_core(_chain_program())
    stats = core.run(1000)
    assert stats.wrong_path_fetched == 0
