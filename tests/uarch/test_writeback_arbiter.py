"""Writeback arbiter: lane limits and recirculation reservations."""

from tests.conftest import make_core


def _fresh_core():
    core = make_core()
    return core


def test_grants_up_to_width_per_cycle():
    core = _fresh_core()
    width = core.config.width
    grants = [core._reserve_writeback(10, 0) for _ in range(width)]
    assert grants == [10] * width
    # the (width+1)-th request spills to the next cycle
    assert core._reserve_writeback(10, 0) == 11


def test_spill_cascades():
    core = _fresh_core()
    width = core.config.width
    for _ in range(2 * width):
        core._reserve_writeback(20, 0)
    assert core._reserve_writeback(20, 0) == 22


def test_wb_fault_reserves_recirculation_slot():
    core = _fresh_core()
    width = core.config.width
    core._reserve_writeback(30, 1)  # faulty-in-WB: holds slot 30 and 31
    assert core._wb_count[30] == 1
    assert core._wb_count[31] == 1
    # the recirculated slot reduces cycle-31 capacity
    for _ in range(width - 1):
        assert core._reserve_writeback(31, 0) == 31
    assert core._reserve_writeback(31, 0) == 32


def test_requests_for_distinct_cycles_independent():
    core = _fresh_core()
    assert core._reserve_writeback(40, 0) == 40
    assert core._reserve_writeback(50, 0) == 50


def test_completion_rate_bounded_by_width_end_to_end():
    # ROB completions per cycle can never exceed the writeback lanes
    core = make_core()
    completions = {}
    original = core._schedule

    def spy(cycle, kind, inst):
        if kind == 0:  # _EV_COMPLETE
            completions[cycle] = completions.get(cycle, 0) + 1
        original(cycle, kind, inst)

    core._schedule = spy
    core.run(1500)
    assert completions
    assert max(completions.values()) <= core.config.width
