"""Branch predictor behaviour."""

import random

import pytest

from repro.uarch.branch_predictor import GShare


def test_rejects_bad_geometry():
    with pytest.raises(ValueError):
        GShare(table_bits=0)
    with pytest.raises(ValueError):
        GShare(table_bits=4, history_bits=2, index_history_bits=4)


def test_learns_always_taken_branch():
    bp = GShare()
    for _ in range(4):
        bp.predict_and_update(0x100, True)
    assert bp.predict(0x100) is True
    assert bp.mispredictions <= 1  # initial weakly-taken guesses right


def test_learns_never_taken_branch():
    bp = GShare()
    for _ in range(4):
        bp.predict_and_update(0x100, False)
    assert bp.predict(0x100) is False


def test_biased_branch_mispredict_rate_near_bias():
    bp = GShare()
    rng = random.Random(3)
    for _ in range(4000):
        bp.predict_and_update(0x200, rng.random() < 0.9)
    # a 2-bit counter on Bernoulli(0.9) mispredicts ~10-15%
    assert bp.misprediction_rate < 0.2


def test_distinct_branches_do_not_interfere():
    bp = GShare(table_bits=12)
    for _ in range(8):
        bp.predict_and_update(0x100, True)
        bp.predict_and_update(0x104, False)
    assert bp.predict(0x100) is True
    assert bp.predict(0x104) is False


def test_ghr_shifts_outcomes():
    bp = GShare(history_bits=4)
    for outcome in (True, False, True, True):
        bp.update(0x100, outcome)
    assert bp.ghr == 0b1011


def test_ghr_masked_to_width():
    bp = GShare(history_bits=3)
    for _ in range(10):
        bp.update(0x100, True)
    assert bp.ghr == 0b111


def test_bimodal_index_ignores_history():
    bp = GShare(index_history_bits=0)
    idx_before = bp._index(0x300)
    bp.update(0x400, True)
    assert bp._index(0x300) == idx_before


def test_gshare_index_uses_history():
    bp = GShare(index_history_bits=4)
    idx_before = bp._index(0x300)
    bp.update(0x400, True)
    assert bp._index(0x300) != idx_before


def test_rate_zero_without_predictions():
    assert GShare().misprediction_rate == 0.0
