"""Functional units and FUSR semantics."""

import pytest

from repro.isa.instruction import DynInst, StaticInst
from repro.isa.opcodes import FuKind, OpClass
from repro.uarch.functional_units import FuPool


def _inst(op):
    return DynInst(0, StaticInst(0x100, op, dest=1))


@pytest.fixture
def pool():
    return FuPool({FuKind.SIMPLE: 2, FuKind.COMPLEX: 1, FuKind.MEM: 1})


def test_rejects_zero_units():
    with pytest.raises(ValueError):
        FuPool({FuKind.SIMPLE: 0})


def test_find_available_prefers_free_unit(pool):
    u0 = pool.find_available(FuKind.SIMPLE, 0)
    pool.issue(u0, _inst(OpClass.IALU), 0, 1)
    u1 = pool.find_available(FuKind.SIMPLE, 0)
    assert u1 is not None and u1 is not u0


def test_pipelined_unit_accepts_next_cycle(pool):
    unit = pool.find_available(FuKind.COMPLEX, 0)
    pool.issue(unit, _inst(OpClass.IMUL), 0, 3)
    assert not unit.available(0)
    assert unit.available(1)  # pipelined: initiation interval 1


def test_unpipelined_divide_blocks_for_full_latency(pool):
    unit = pool.find_available(FuKind.COMPLEX, 0)
    pool.issue(unit, _inst(OpClass.IDIV), 0, 12)
    assert not unit.available(11)
    assert unit.available(12)


def test_freeze_extra_extends_busy_window(pool):
    unit = pool.find_available(FuKind.SIMPLE, 0)
    pool.issue(unit, _inst(OpClass.IALU), 0, 1)
    unit.freeze_extra(1)
    assert not unit.available(1)
    assert unit.available(2)


def test_all_units_busy_returns_none(pool):
    for _ in range(2):
        unit = pool.find_available(FuKind.SIMPLE, 0)
        pool.issue(unit, _inst(OpClass.IALU), 0, 1)
    assert pool.find_available(FuKind.SIMPLE, 0) is None
    assert pool.find_available(FuKind.SIMPLE, 1) is not None


def test_shift_pending_delays_busy_units_only(pool):
    busy = pool.find_available(FuKind.COMPLEX, 0)
    pool.issue(busy, _inst(OpClass.IDIV), 0, 12)
    idle = pool.find_available(FuKind.MEM, 0)
    pool.shift_pending(now=5)
    assert busy.next_issue == 13
    assert idle.next_issue == 0


def test_issue_counting(pool):
    unit = pool.find_available(FuKind.MEM, 0)
    pool.issue(unit, _inst(OpClass.LOAD), 0, 1)
    assert pool.issued[FuKind.MEM] == 1


def test_reset_clears_reservations(pool):
    unit = pool.find_available(FuKind.COMPLEX, 0)
    pool.issue(unit, _inst(OpClass.IDIV), 0, 12)
    pool.reset()
    assert unit.available(0)


def test_describe(pool):
    assert pool.describe() == {"SIMPLE": 2, "COMPLEX": 1, "MEM": 1}
