"""Pipeline fault handling: replay, EP stalls, VTE per-stage behaviour."""

import pytest

from repro.core.schemes import SchemeKind
from repro.core.tep import TimingErrorPredictor
from repro.isa.instruction import StaticInst
from repro.isa.opcodes import OpClass, PipeStage
from repro.isa.program import BasicBlock, Program

from tests.conftest import make_core, make_linear_program


class ForcedInjector:
    """Injects a fault at a fixed stage for chosen PCs on every instance."""

    def __init__(self, stage, pcs, period=1):
        self.stage = stage
        self.pcs = set(pcs)
        self.period = period
        self._count = 0
        self.enabled = True

    def resolve(self, inst, vdd):
        if inst.replayed or inst.pc not in self.pcs:
            return inst
        self._count += 1
        if self._count % self.period == 0:
            inst.add_fault(self.stage)
        return inst


def _mem_program():
    """Loop with a load and a store plus filler ALU ops."""
    insts = [
        StaticInst(0x1000, OpClass.IALU, dest=1, srcs=()),
        StaticInst(0x1004, OpClass.LOAD, dest=2, srcs=(1,),
                   mem_base=0x100, mem_stride=8, mem_region=512),
        StaticInst(0x1008, OpClass.IALU, dest=3, srcs=(2,)),
        StaticInst(0x100C, OpClass.STORE, srcs=(3,),
                   mem_base=0x800, mem_stride=8, mem_region=512),
        StaticInst(0x1010, OpClass.BRANCH, srcs=(), taken_prob=0.0),
    ]
    return Program([BasicBlock(0, insts, [(0, 1.0)])], name="mem")


def _faulty_pc():
    """A looping ALU program; PC 0x1004 is the designated faulty one."""
    return make_linear_program(n_blocks=2, block_len=5), 0x1004


def _pretrain(tep, pc, stage):
    key = tep.key_for(pc, 0)
    for _ in range(3):
        tep.train(key, stage, True)
    return key


class TestRazorReplay:
    def test_every_fault_replays(self):
        program, pc = _faulty_pc()
        injector = ForcedInjector(PipeStage.EXECUTE, [pc], period=10)
        core = make_core(program, SchemeKind.RAZOR, injector, vdd=1.04)
        stats = core.run(2000)
        assert stats.faults_total > 0
        assert stats.replays == stats.faults_total
        assert stats.faults_unpredicted == stats.faults_total
        # default (Razor-I selective) recovery re-executes in place
        assert stats.squashed == 0
        assert stats.ep_stalls > 0  # recovery bubbles
        assert stats.committed >= 2000

    def test_flush_mode_squashes_and_refetches(self):
        from repro.uarch.config import CoreConfig

        program, pc = _faulty_pc()
        injector = ForcedInjector(PipeStage.EXECUTE, [pc], period=10)
        core = make_core(
            program, SchemeKind.RAZOR, injector, vdd=1.04,
            config=CoreConfig.core1(replay_mode="flush"),
        )
        stats = core.run(2000)
        assert stats.replays > 0
        assert stats.squashed > 0
        assert stats.committed >= 2000

    def test_flush_costs_more_than_selective(self):
        from repro.uarch.config import CoreConfig

        program, pc = _faulty_pc()

        def run(mode):
            injector = ForcedInjector(PipeStage.EXECUTE, [pc], period=5)
            core = make_core(
                program, SchemeKind.RAZOR, injector, vdd=1.04,
                config=CoreConfig.core1(replay_mode=mode),
            )
            return core.run(2000).cycles

        assert run("flush") > run("selective")

    def test_replays_cost_cycles(self):
        program, pc = _faulty_pc()
        clean = make_core(program, SchemeKind.RAZOR, None, vdd=1.04)
        base = clean.run(2000).cycles
        injector = ForcedInjector(PipeStage.EXECUTE, [pc], period=5)
        faulty = make_core(program, SchemeKind.RAZOR, injector, vdd=1.04)
        assert faulty.run(2000).cycles > base

    @pytest.mark.parametrize("stage", [
        PipeStage.ISSUE, PipeStage.REGREAD, PipeStage.EXECUTE,
        PipeStage.WRITEBACK,
    ])
    def test_replay_from_every_ooo_stage(self, stage):
        program, pc = _faulty_pc()
        injector = ForcedInjector(stage, [pc], period=20)
        core = make_core(program, SchemeKind.RAZOR, injector, vdd=1.04)
        stats = core.run(1500)
        assert stats.replays > 0
        assert stats.committed >= 1500

    def test_replay_from_memory_stage(self):
        injector = ForcedInjector(PipeStage.MEM, [0x1004], period=20)
        core = make_core(_mem_program(), SchemeKind.RAZOR, injector, vdd=1.04)
        stats = core.run(1500)
        assert stats.replays > 0
        assert stats.stage_faults.get(PipeStage.MEM, 0) > 0


class TestErrorPadding:
    def test_predicted_fault_stalls_instead_of_replaying(self):
        program, pc = _faulty_pc()
        injector = ForcedInjector(PipeStage.EXECUTE, [pc])
        tep = TimingErrorPredictor()
        _pretrain(tep, pc, PipeStage.EXECUTE)
        core = make_core(program, SchemeKind.EP, injector, vdd=1.04, tep=tep)
        stats = core.run(1500)
        assert stats.ep_stalls > 0
        assert stats.faults_predicted > 0
        # trained predictor: the recurring fault never replays
        assert stats.replays == 0

    def test_stall_freezes_whole_pipeline(self):
        program, pc = _faulty_pc()
        injector = ForcedInjector(PipeStage.EXECUTE, [pc])
        tep = TimingErrorPredictor()
        _pretrain(tep, pc, PipeStage.EXECUTE)
        ep = make_core(program, SchemeKind.EP, injector, vdd=1.04, tep=tep)
        ep_stats = ep.run(1500)
        base = make_core(program, SchemeKind.FAULT_FREE, None, vdd=1.04)
        base_stats = base.run(1500)
        assert ep_stats.cycles >= base_stats.cycles + ep_stats.ep_stalls * 0.9


class TestVteScheduling:
    @pytest.mark.parametrize("stage", [
        PipeStage.ISSUE, PipeStage.REGREAD, PipeStage.EXECUTE,
        PipeStage.WRITEBACK,
    ])
    def test_predicted_fault_tolerated_without_replay(self, stage):
        program, pc = _faulty_pc()
        injector = ForcedInjector(stage, [pc])
        tep = TimingErrorPredictor()
        _pretrain(tep, pc, stage)
        core = make_core(program, SchemeKind.ABS, injector, vdd=1.04, tep=tep)
        stats = core.run(1500)
        assert stats.replays == 0
        assert stats.faults_predicted > 0
        assert stats.padded_instructions > 0

    def test_mem_stage_tolerated(self):
        injector = ForcedInjector(PipeStage.MEM, [0x1004])
        tep = TimingErrorPredictor()
        _pretrain(tep, 0x1004, PipeStage.MEM)
        core = make_core(_mem_program(), SchemeKind.ABS, injector, vdd=1.04,
                         tep=tep)
        stats = core.run(1500)
        assert stats.replays == 0
        assert stats.slot_freezes > 0

    def test_vte_cheaper_than_ep(self):
        program, pc = _faulty_pc()
        tep_a = TimingErrorPredictor()
        tep_b = TimingErrorPredictor()
        _pretrain(tep_a, pc, PipeStage.EXECUTE)
        _pretrain(tep_b, pc, PipeStage.EXECUTE)
        abs_core = make_core(
            program, SchemeKind.ABS,
            ForcedInjector(PipeStage.EXECUTE, [pc]), vdd=1.04, tep=tep_a,
        )
        ep_core = make_core(
            program, SchemeKind.EP,
            ForcedInjector(PipeStage.EXECUTE, [pc]), vdd=1.04, tep=tep_b,
        )
        assert abs_core.run(2000).cycles <= ep_core.run(2000).cycles

    def test_wrong_stage_prediction_still_replays(self):
        program, pc = _faulty_pc()
        injector = ForcedInjector(PipeStage.EXECUTE, [pc], period=10)
        tep = TimingErrorPredictor()
        _pretrain(tep, pc, PipeStage.WRITEBACK)  # predicts the wrong stage
        core = make_core(program, SchemeKind.ABS, injector, vdd=1.04, tep=tep)
        stats = core.run(1000)
        assert stats.replays > 0

    def test_tep_learns_during_run(self):
        # cold predictor: the first instance replays, later ones are padded
        program, pc = _faulty_pc()
        injector = ForcedInjector(PipeStage.EXECUTE, [pc])
        core = make_core(program, SchemeKind.ABS, injector, vdd=1.04)
        stats = core.run(2000)
        assert stats.replays >= 1
        assert stats.faults_predicted > stats.faults_unpredicted

    def test_sensor_gates_predictions_at_nominal_voltage(self):
        program, pc = _faulty_pc()
        tep = TimingErrorPredictor()
        _pretrain(tep, pc, PipeStage.EXECUTE)
        core = make_core(program, SchemeKind.ABS, None, vdd=1.10, tep=tep)
        stats = core.run(1000)
        assert stats.padded_instructions == 0


class TestInOrderFaults:
    def test_frontend_fault_replays(self):
        program, pc = _faulty_pc()
        injector = ForcedInjector(PipeStage.DECODE, [pc], period=25)
        core = make_core(program, SchemeKind.RAZOR, injector, vdd=1.04)
        stats = core.run(1000)
        assert stats.replays > 0
        assert stats.stage_faults.get(PipeStage.DECODE, 0) > 0

    def test_inorder_stage_stall_when_predicted(self):
        program, pc = _faulty_pc()
        injector = ForcedInjector(PipeStage.RENAME, [pc])
        tep = TimingErrorPredictor()
        _pretrain(tep, pc, PipeStage.RENAME)
        core = make_core(program, SchemeKind.ABS, injector, vdd=1.04, tep=tep)
        stats = core.run(1000)
        assert stats.inorder_stalls > 0
        assert stats.replays == 0
