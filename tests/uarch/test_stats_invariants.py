"""SimStats fault-accounting invariants across schemes.

The campaign engine's fault-rate and replay-rate aggregates pool raw
``SimStats`` counters across many runs; these tests pin the counter
algebra those aggregates sit on, over a small (benchmark x scheme) grid.
"""

import pytest

from repro.core.schemes import SchemeKind
from repro.harness.runner import RunSpec, run_one

_FAST = dict(n_instructions=800, warmup=400)
_FAULTY_SCHEMES = (
    SchemeKind.RAZOR, SchemeKind.EP, SchemeKind.ABS,
    SchemeKind.FFS, SchemeKind.CDS,
)
_GRID = [
    (benchmark, scheme)
    for benchmark in ("astar", "bzip2")
    for scheme in _FAULTY_SCHEMES
]


@pytest.fixture(scope="module")
def grid_results():
    return {
        (benchmark, scheme): run_one(
            RunSpec(benchmark, scheme, 0.97, seed=3, **_FAST)
        )
        for benchmark, scheme in _GRID
    }


@pytest.mark.parametrize("bench,scheme", _GRID)
def test_fault_partition(grid_results, bench, scheme):
    stats = grid_results[(bench, scheme)].stats
    assert stats.faults_total == (
        stats.faults_predicted + stats.faults_unpredicted
    )


@pytest.mark.parametrize("bench,scheme", _GRID)
def test_stage_faults_sum_to_total(grid_results, bench, scheme):
    stats = grid_results[(bench, scheme)].stats
    assert sum(stats.stage_faults.values()) == stats.faults_total
    assert all(count > 0 for count in stats.stage_faults.values())


@pytest.mark.parametrize("bench,scheme", _GRID)
def test_counters_are_sane(grid_results, bench, scheme):
    stats = grid_results[(bench, scheme)].stats
    assert stats.committed >= _FAST["n_instructions"]
    assert stats.faults_total > 0  # 0.97 V actually stresses the pipeline
    assert 0 <= stats.faults_predicted <= stats.faults_total
    assert 0 <= stats.replays
    assert 0.0 <= stats.fault_rate < 1.0


@pytest.mark.parametrize("scheme", _FAULTY_SCHEMES)
def test_razor_replays_every_fault(grid_results, scheme):
    stats = grid_results[("astar", scheme)].stats
    if scheme is SchemeKind.RAZOR:
        # no prediction: every violation replays
        assert stats.replays >= stats.faults_total
    else:
        # predicted faults are tolerated without (necessarily) replaying
        assert stats.replays >= stats.faults_unpredicted


def test_as_dict_exports_every_counter():
    result = run_one(RunSpec("astar", SchemeKind.CDS, 0.97, seed=3, **_FAST))
    stats = result.stats
    exported = stats.as_dict()
    # every raw counter attribute appears (iq_occupancy_accum surfaces
    # as the derived avg_iq_occupancy)
    raw = {
        name for name in vars(stats)
        if name != "iq_occupancy_accum"
    }
    assert raw <= set(exported)
    assert "avg_iq_occupancy" in exported
    # enum-keyed maps flatten to JSON-safe name keys
    assert exported["stage_faults"] == {
        stage.name: count for stage, count in stats.stage_faults.items()
    }
    assert exported["fu_ops"] == {
        op.name: count for op, count in stats.fu_ops.items()
    }
    assert sum(exported["fu_ops"].values()) == sum(stats.fu_ops.values())
    import json

    json.dumps(exported)  # the whole export is JSON-serializable


def test_fault_free_run_has_no_faults():
    stats = run_one(
        RunSpec("astar", SchemeKind.FAULT_FREE, 0.97, seed=3, **_FAST)
    ).stats
    assert stats.faults_total == 0
    assert stats.stage_faults == {}
    assert stats.faults_predicted == stats.faults_unpredicted == 0
