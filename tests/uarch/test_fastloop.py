"""The fast cycle kernel must be bit-identical to the pure loop.

``run_fast`` deletes per-cycle checks that are statically inert for the
eligible configurations; this suite pins that the deletion is invisible:
for every eligible point, a run with ``REPRO_PURE_LOOP=1`` (which forces
the reference loop) and a normal run produce byte-equal stats, cache
counters, and energy. It also pins the eligibility gate itself so a
future feature that invalidates a hoist cannot silently keep the fast
path.
"""

import pytest

from repro.core.schemes import SchemeKind
from repro.faults.storm import StormConfig
from repro.harness.runner import RunSpec, build_core, run_one
from repro.telemetry.config import TelemetryConfig
from repro.uarch.fastloop import fast_eligible


def _digest(result):
    return {
        "stats": result.stats.as_dict(),
        "cache": dict(result.cache_stats),
        "energy": repr(result.energy.__dict__),
    }


GRID = [
    dict(benchmark="gcc", scheme=SchemeKind.FAULT_FREE, vdd=1.10),
    dict(benchmark="gcc", scheme=SchemeKind.ABS, vdd=0.97),
    dict(benchmark="astar", scheme=SchemeKind.CDS, vdd=1.04),
    dict(benchmark="bzip2", scheme=SchemeKind.RAZOR, vdd=0.97),
    dict(benchmark="mcf", scheme=SchemeKind.EP, vdd=0.97),
]


@pytest.mark.parametrize(
    "point", GRID, ids=[f"{g['benchmark']}-{g['scheme'].name}" for g in GRID]
)
def test_fast_loop_matches_pure_loop(point, monkeypatch):
    kwargs = dict(point, n_instructions=2500, warmup=1000, seed=7)
    fast = run_one(RunSpec(**kwargs))
    monkeypatch.setenv("REPRO_PURE_LOOP", "1")
    pure = run_one(RunSpec(**kwargs))
    assert _digest(fast) == _digest(pure)


def test_fast_loop_matches_pure_loop_with_storm(monkeypatch):
    kwargs = dict(
        benchmark="gcc", scheme=SchemeKind.ABS, vdd=0.97,
        n_instructions=2500, warmup=1000, seed=7,
        storm=StormConfig(sensor_flap=0.01),
    )
    fast = run_one(RunSpec(**kwargs))
    monkeypatch.setenv("REPRO_PURE_LOOP", "1")
    pure = run_one(RunSpec(**kwargs))
    assert _digest(fast) == _digest(pure)


class TestEligibility:
    def _core(self, **kw):
        kwargs = dict(
            benchmark="gcc", scheme=SchemeKind.ABS, vdd=0.97,
            n_instructions=500, warmup=0, seed=7,
        )
        kwargs.update(kw)
        return build_core(RunSpec(**kwargs))

    def test_dominant_configs_take_the_fast_path(self):
        assert fast_eligible(self._core())
        assert fast_eligible(self._core(scheme=SchemeKind.FAULT_FREE))
        # whole-pipeline stalls are mirrored, not excluded: EP and the
        # selective-replay schemes stay on the fast path
        assert fast_eligible(self._core(scheme=SchemeKind.EP))

    def test_env_override_forces_pure(self, monkeypatch):
        monkeypatch.setenv("REPRO_PURE_LOOP", "1")
        assert not fast_eligible(self._core())

    def test_telemetry_forces_pure(self):
        from repro.harness.runner import begin_measurement

        spec = RunSpec(
            "gcc", SchemeKind.ABS, 0.97, n_instructions=500, warmup=0,
            seed=7, telemetry=TelemetryConfig(metrics=True, interval=100),
        )
        core = build_core(spec)
        begin_measurement(core, spec)
        assert not fast_eligible(core)

    def test_storm_wrap_forces_pure(self):
        from repro.harness.runner import begin_measurement

        spec = RunSpec(
            "gcc", SchemeKind.ABS, 0.97, n_instructions=500, warmup=0,
            seed=7, storm=StormConfig(burst_rate=0.001),
        )
        core = build_core(spec)
        begin_measurement(core, spec)
        assert not fast_eligible(core)


class _Sampler:
    """Minimal telemetry-sampler stand-in: counts its sample() calls."""

    def __init__(self):
        self.next_cycle = 0
        self.samples = 0

    def sample(self, core, cycle):
        self.samples += 1
        return cycle + 100


class TestMidRunAttachment:
    """Eligibility must be re-checked, not decided once at window start.

    An observer attached *during* a window (the fast loop's hoists made
    it statically invisible) has to force a fallback to the reference
    loop, or it silently never fires for the rest of the window.
    """

    def _attach_mid_run(self, core, attach, after_committed=32):
        real_commit = core._commit

        def commit_then_attach():
            real_commit()
            if core.stats.committed >= after_committed:
                attach()

        core._commit = commit_then_attach

    def test_sampler_attached_mid_window_fires(self):
        spec = RunSpec(
            "gcc", SchemeKind.ABS, 0.97, n_instructions=4000, warmup=0,
            seed=7,
        )
        core = build_core(spec)
        sampler = _Sampler()

        def attach():
            if core.telemetry_sampler is None:
                core.telemetry_sampler = sampler

        self._attach_mid_run(core, attach)
        assert fast_eligible(core)
        stats = core.run(4000)
        # the window completed in full on the hybrid fast->pure path...
        assert stats.committed >= 4000
        # ...and the mid-run sampler actually sampled (the fast loop
        # alone would have ignored it for the whole window)
        assert sampler.samples > 0

    def test_run_fast_returns_none_on_eligibility_loss(self):
        from repro.uarch.fastloop import run_fast

        spec = RunSpec(
            "gcc", SchemeKind.ABS, 0.97, n_instructions=4000, warmup=0,
            seed=7,
        )
        core = build_core(spec)
        self._attach_mid_run(
            core, lambda: setattr(core, "commit_listener", lambda inst: None)
        )
        before = core.stats.cycles
        out = run_fast(core, 4000, 400 * 4000 + 20000, 20000)
        assert out is None
        # locals flushed on the bail-out path: the cycles the fast loop
        # did run are visible, and the core can finish the window
        assert core.stats.cycles > before
        assert core.stats.committed < 4000
        stats = core.run(4000)
        assert stats.committed >= 4000
