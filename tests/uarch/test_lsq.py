"""Load/store queue: disambiguation, forwarding, CAM accounting."""

import pytest

from repro.isa.instruction import DynInst, StaticInst
from repro.isa.opcodes import OpClass
from repro.uarch.lsq import LoadStoreQueue


def _load(seq, addr):
    return DynInst(seq, StaticInst(0x100 + 4 * seq, OpClass.LOAD, dest=1,
                                   srcs=(2,)), mem_addr=addr)


def _store(seq, addr):
    return DynInst(seq, StaticInst(0x500 + 4 * seq, OpClass.STORE,
                                   srcs=(1, 2)), mem_addr=addr)


@pytest.fixture
def lsq():
    return LoadStoreQueue(8)


def test_rejects_bad_size():
    with pytest.raises(ValueError):
        LoadStoreQueue(0)


def test_overflow(lsq):
    for seq in range(8):
        lsq.allocate(_load(seq, seq * 8))
    assert lsq.full
    with pytest.raises(RuntimeError):
        lsq.allocate(_load(9, 0))


def test_older_stores_resolved(lsq):
    store = _store(0, 0x100)
    load = _load(1, 0x100)
    lsq.allocate(store)
    lsq.allocate(load)
    assert not lsq.older_stores_resolved(1, cycle=10)
    lsq.resolve_address(store, cycle=5)
    assert lsq.older_stores_resolved(1, cycle=5)
    assert not lsq.older_stores_resolved(1, cycle=4)


def test_younger_stores_do_not_block(lsq):
    load = _load(0, 0x100)
    store = _store(1, 0x100)
    lsq.allocate(load)
    lsq.allocate(store)
    assert lsq.older_stores_resolved(0, cycle=0)


def test_forwarding_exact_match(lsq):
    store = _store(0, 0x100)
    load = _load(1, 0x100)
    lsq.allocate(store)
    lsq.allocate(load)
    lsq.resolve_address(store, 0)
    assert lsq.search_forward(load, cycle=1) is True
    assert lsq.forwards == 1
    assert lsq.cam_searches == 1


def test_forwarding_match_granularity_is_8_bytes(lsq):
    store = _store(0, 0x100)
    lsq.allocate(store)
    lsq.resolve_address(store, 0)
    near = _load(1, 0x104)   # same 8-byte word
    far = _load(2, 0x108)    # next word
    lsq.allocate(near)
    lsq.allocate(far)
    assert lsq.search_forward(near, cycle=1) is True
    assert lsq.search_forward(far, cycle=1) is False


def test_no_forward_from_younger_store(lsq):
    load = _load(0, 0x200)
    store = _store(1, 0x200)
    lsq.allocate(load)
    lsq.allocate(store)
    lsq.resolve_address(store, 0)
    assert lsq.search_forward(load, cycle=5) is False


def test_no_forward_from_unresolved_store(lsq):
    store = _store(0, 0x300)
    load = _load(1, 0x300)
    lsq.allocate(store)
    lsq.allocate(load)
    assert lsq.search_forward(load, cycle=0) is False


def test_retire_removes_entry(lsq):
    store = _store(0, 0x100)
    lsq.allocate(store)
    lsq.retire(store)
    assert len(lsq) == 0
    with pytest.raises(KeyError):
        lsq.retire(store)


def test_resolve_unknown_instruction_raises(lsq):
    with pytest.raises(KeyError):
        lsq.resolve_address(_load(9, 0), 0)


def test_squash_from(lsq):
    for seq in range(4):
        lsq.allocate(_load(seq, seq * 64))
    lsq.squash_from(2)
    assert len(lsq) == 2
