"""Pipeline trace viewer."""

from repro.core.schemes import SchemeKind
from repro.uarch.pipetrace import PipeTracer, render_records

from tests.conftest import make_core, make_linear_program


def _traced_core(n=100):
    core = make_core(make_linear_program())
    tracer = PipeTracer(core)
    core.run(n)
    return core, tracer


def test_records_every_instruction():
    core, tracer = _traced_core(100)
    records = tracer.records()
    assert len(records) >= 100
    seqs = [r.seq for r in records]
    assert seqs == sorted(seqs)


def test_stage_cycles_monotonic():
    _, tracer = _traced_core(100)
    for r in tracer.records():
        if r.commit < 0:
            continue  # still in flight at run end
        assert r.fetch <= r.dispatch <= r.issue < r.complete <= r.commit


def test_render_contains_stage_letters():
    _, tracer = _traced_core(60)
    text = tracer.render(first_seq=0, count=8)
    assert "f" in text and "i" in text and "r" in text
    assert "cycles" in text.splitlines()[0]


def test_render_window_is_bounded():
    _, tracer = _traced_core(60)
    text = tracer.render(first_seq=0, count=8, width=40)
    for line in text.splitlines()[1:]:
        assert len(line.split("|")[1]) <= 40


def test_render_empty():
    assert "no instructions" in render_records([])


def test_faulty_marker():
    from repro.isa.opcodes import PipeStage
    from tests.uarch.test_pipeline_faults import ForcedInjector

    program = make_linear_program()
    pc = program.static_insts[1].pc
    core = make_core(program, SchemeKind.RAZOR,
                     ForcedInjector(PipeStage.EXECUTE, [pc]), vdd=1.04)
    tracer = PipeTracer(core)
    core.run(50)
    text = tracer.render(count=20)
    assert "*" in text


def test_max_records_cap():
    core = make_core(make_linear_program())
    tracer = PipeTracer(core, max_records=10)
    core.run(100)
    assert len(tracer.records()) == 10


def test_truncation_is_counted_and_surfaced():
    core = make_core(make_linear_program())
    tracer = PipeTracer(core, max_records=10)
    stats = core.run(100)
    assert tracer.dropped == stats.committed - 10
    assert f"[{tracer.dropped} records dropped" in tracer.render()


def test_untruncated_trace_reports_no_drops():
    _, tracer = _traced_core(50)
    assert tracer.dropped == 0
    assert "dropped" not in tracer.render()


def test_render_empty_still_reports_drops():
    assert "5 records dropped" in render_records([], dropped=5)
