"""Rename state: RAT, free list, ready cycles, squash undo."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.instruction import DynInst, StaticInst
from repro.isa.opcodes import OpClass
from repro.uarch.regfile import INFINITE, RenameState


def _inst(seq, dest=1, srcs=(2, 3)):
    return DynInst(seq, StaticInst(0x100 + 4 * seq, OpClass.IALU,
                                   dest=dest, srcs=srcs))


def _store_like(seq):
    return DynInst(seq, StaticInst(0x900 + 4 * seq, OpClass.STORE,
                                   dest=None, srcs=(1,)))


@pytest.fixture
def rename():
    return RenameState(8, 16)


def test_rejects_too_few_phys_regs():
    with pytest.raises(ValueError):
        RenameState(8, 8)


def test_initial_mapping_identity_and_ready(rename):
    assert rename.rat == list(range(8))
    for p in range(8):
        assert rename.ready_cycle[p] == 0
    for p in range(8, 16):
        assert rename.ready_cycle[p] == INFINITE


def test_rename_allocates_and_remaps(rename):
    inst = _inst(0, dest=1)
    rename.rename(inst)
    assert inst.phys_dest >= 8
    assert inst.prev_phys_dest == 1
    assert rename.rat[1] == inst.phys_dest
    assert rename.ready_cycle[inst.phys_dest] == INFINITE


def test_rename_without_dest_allocates_nothing(rename):
    free_before = rename.free_regs
    inst = _store_like(0)
    rename.rename(inst)
    assert inst.phys_dest == -1
    assert rename.free_regs == free_before


def test_sources_renamed_through_rat(rename):
    producer = _inst(0, dest=2)
    rename.rename(producer)
    consumer = _inst(1, dest=4, srcs=(2,))
    rename.rename(consumer)
    assert consumer.phys_srcs == (producer.phys_dest,)


def test_commit_frees_previous_mapping(rename):
    inst = _inst(0, dest=1)
    rename.rename(inst)
    free_before = rename.free_regs
    rename.commit(inst)
    assert rename.free_regs == free_before + 1
    assert 1 in rename.free_list  # the old phys reg of arch 1


def test_squash_restores_rat(rename):
    a = _inst(0, dest=1)
    b = _inst(1, dest=1)
    rename.rename(a)
    rename.rename(b)
    rename.squash(b)  # youngest first
    assert rename.rat[1] == a.phys_dest
    rename.squash(a)
    assert rename.rat[1] == 1


def test_ready_cycle_semantics(rename):
    inst = _inst(0, dest=1, srcs=(2,))
    rename.rename(inst)
    consumer = _inst(1, dest=3, srcs=(1,))
    rename.rename(consumer)
    assert not rename.srcs_ready(consumer, 100)
    rename.set_ready(inst.phys_dest, 10)
    assert not rename.srcs_ready(consumer, 9)
    assert rename.srcs_ready(consumer, 10)
    assert rename.ready_by(consumer) == 10


def test_ready_by_without_sources_is_zero(rename):
    inst = _inst(0, srcs=())
    rename.rename(inst)
    assert rename.ready_by(inst) == 0


def test_shift_pending_delays_future_only(rename):
    rename.set_ready(10, 5)
    rename.set_ready(11, 20)
    rename.shift_pending(now=10)
    assert rename.ready_cycle[10] == 5    # already visible: unchanged
    assert rename.ready_cycle[11] == 21   # in flight: delayed
    assert rename.ready_cycle[15] == INFINITE  # unscheduled: unchanged


def test_rename_exhaustion_raises(rename):
    for seq in range(rename.free_regs):
        assert rename.can_rename(True)
        rename.rename(_inst(seq))
    assert not rename.can_rename(True)
    assert rename.can_rename(False)
    with pytest.raises(RuntimeError):
        rename.rename(_inst(99))


@given(st.lists(st.integers(min_value=1, max_value=7), min_size=1,
                max_size=30))
@settings(max_examples=50, deadline=None)
def test_rename_squash_all_restores_initial_state(dests):
    rename = RenameState(8, 48)
    insts = []
    for seq, dest in enumerate(dests):
        inst = _inst(seq, dest=dest)
        rename.rename(inst)
        insts.append(inst)
    for inst in reversed(insts):
        rename.squash(inst)
    assert rename.rat == list(range(8))
    assert sorted(rename.free_list) == list(range(8, 48))


@given(st.lists(st.integers(min_value=1, max_value=7), min_size=1,
                max_size=30))
@settings(max_examples=50, deadline=None)
def test_rename_commit_all_conserves_registers(dests):
    rename = RenameState(8, 48)
    insts = []
    for seq, dest in enumerate(dests):
        inst = _inst(seq, dest=dest)
        rename.rename(inst)
        insts.append(inst)
    for inst in insts:
        rename.commit(inst)
    # every physical register is either live (mapped) or free
    assert len(rename.free_list) + 8 == 48
    assert len(set(rename.rat)) == 8
