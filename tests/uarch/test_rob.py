"""Reorder buffer: in-order commit and squash."""

import pytest

from repro.isa.instruction import DynInst, StaticInst
from repro.isa.opcodes import OpClass
from repro.uarch.rob import ReorderBuffer


def _inst(seq):
    return DynInst(seq, StaticInst(0x100 + 4 * seq, OpClass.IALU, dest=1))


def test_rejects_bad_size():
    with pytest.raises(ValueError):
        ReorderBuffer(0)


def test_allocate_and_overflow():
    rob = ReorderBuffer(2)
    rob.allocate(_inst(0))
    rob.allocate(_inst(1))
    assert rob.full
    with pytest.raises(RuntimeError):
        rob.allocate(_inst(2))


def test_commit_stops_at_incomplete_head():
    rob = ReorderBuffer(8)
    insts = [_inst(i) for i in range(4)]
    for inst in insts:
        rob.allocate(inst)
    insts[0].completed = True
    insts[2].completed = True  # completed out of order
    committed = rob.commit_ready(width=4)
    assert [i.seq for i in committed] == [0]
    assert rob.head is insts[1]


def test_commit_respects_width():
    rob = ReorderBuffer(8)
    insts = [_inst(i) for i in range(6)]
    for inst in insts:
        rob.allocate(inst)
        inst.completed = True
    committed = rob.commit_ready(width=4)
    assert [i.seq for i in committed] == [0, 1, 2, 3]
    assert len(rob) == 2


def test_squash_from_returns_youngest_first():
    rob = ReorderBuffer(8)
    insts = [_inst(i) for i in range(5)]
    for inst in insts:
        rob.allocate(inst)
    squashed = rob.squash_from(2)
    assert [i.seq for i in squashed] == [4, 3, 2]
    assert [i.seq for i in rob] == [0, 1]


def test_squash_from_beyond_tail_is_noop():
    rob = ReorderBuffer(4)
    rob.allocate(_inst(0))
    assert rob.squash_from(5) == []
    assert len(rob) == 1


def test_head_of_empty_is_none():
    assert ReorderBuffer(4).head is None
