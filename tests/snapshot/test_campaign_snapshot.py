"""Campaign integration: fork-per-draw, journaled keys, wipe resilience."""

import shutil

import pytest

from repro.campaign.executor import run_campaign
from repro.campaign.journal import Journal
from repro.campaign.plan import CampaignSpec


def _spec(**kw):
    kwargs = dict(
        name="snap", benchmarks=["gcc"], schemes=["ABS"], vdds=[0.97],
        n_instructions=1500, warmup=800, min_seeds=2, max_seeds=2,
        batch_size=1, master_seed=3,
    )
    kwargs.update(kw)
    return CampaignSpec(**kwargs)


def _run_events(directory):
    """All journaled run events, in append order."""
    state = Journal(directory).replay()
    events = []
    for records in state.runs.values():
        events.extend(records)
    return events


def test_campaign_journals_snapshot_keys(tmp_path):
    campaign_dir = tmp_path / "c"
    snap_dir = tmp_path / "snaps"
    report = run_campaign(
        campaign_dir, spec=_spec(), cache=False, snapshot_dir=str(snap_dir)
    )
    assert report["points"][0]["n"] == 2
    runs = _run_events(campaign_dir)
    assert len(runs) == 2
    # every draw forked from the SAME warmup snapshot (fault draw mode)
    keys = {e["snapshot"] for e in runs}
    assert len(keys) == 1
    point = _spec().points()[0]
    assert keys == {_spec().pair_specs(point, 0)[0].warmup_key()}
    assert list(snap_dir.glob("*/*.snap"))


def test_campaign_resumes_across_snapshot_wipe(tmp_path):
    """A wiped snapshot cache costs re-warms, never correctness."""
    campaign_dir = tmp_path / "c"
    snap_dir = tmp_path / "snaps"
    spec = _spec()

    class _Boom(RuntimeError):
        pass

    from repro.campaign.executor import make_run_fn

    real_run_fn = make_run_fn(cache=False)
    calls = []

    def interrupted(specs):
        if calls:
            raise _Boom("die after the first batch")
        calls.append(1)
        return real_run_fn(specs)

    with pytest.raises(_Boom):
        run_campaign(
            campaign_dir, spec=spec, cache=False, run_fn=interrupted,
            snapshot_dir=str(snap_dir),
        )
    state = Journal(campaign_dir).replay()
    assert state.total_runs == 1

    # the snapshot cache disappears between sessions
    shutil.rmtree(snap_dir)

    report = run_campaign(
        campaign_dir, resume=True, cache=False, run_fn=real_run_fn,
        snapshot_dir=str(snap_dir),
    )
    assert report["points"][0]["n"] == 2
    runs = _run_events(campaign_dir)
    assert [e["index"] for e in runs] == [0, 1]
    # the re-warm regenerated the snapshot at the same content address
    assert len({e["snapshot"] for e in runs}) == 1

    # a full no-wipe rerun of the same campaign produces identical draws
    fresh_dir = tmp_path / "fresh"
    run_campaign(
        fresh_dir, spec=_spec(), cache=False, snapshot_dir=str(snap_dir)
    )
    fresh_runs = _run_events(fresh_dir)
    assert [(e["index"], e["metrics"]) for e in fresh_runs] == [
        (e["index"], e["metrics"]) for e in runs
    ]


def test_no_snapshot_flag_runs_cold_with_equal_results(tmp_path):
    warm = run_campaign(
        tmp_path / "warm", spec=_spec(), cache=False,
        snapshot_dir=str(tmp_path / "snaps"),
    )
    cold = run_campaign(
        tmp_path / "cold", spec=_spec(), cache=False, snapshots=False,
    )
    assert (
        warm["points"][0]["metrics"] == cold["points"][0]["metrics"]
    )
    cold_runs = _run_events(tmp_path / "cold")
    assert cold_runs and all("snapshot" not in e for e in cold_runs)
    assert not list((tmp_path / "cold").glob("snapshots/**/*.snap"))
