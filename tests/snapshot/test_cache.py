"""Snapshot cache mechanics: recovery, sharing, pruning, prewarm."""

import os
import pickle

from repro.core.schemes import SchemeKind
from repro.harness.parallel import ResultCache, model_version, run_many
from repro.harness.runner import RunSpec, run_one
from repro.snapshot import (
    SnapshotCache,
    SnapshotError,
    capture_core,
    ensure_snapshot,
    restore_core,
    warmed_core,
)


def _spec(**kw):
    kwargs = dict(
        benchmark="gcc", scheme=SchemeKind.ABS, vdd=0.97,
        n_instructions=2000, warmup=1000, seed=5,
    )
    kwargs.update(kw)
    return RunSpec(**kwargs)


def _wipe_mem_layer():
    # force the disk path: the in-process layer would otherwise mask
    # on-disk corruption
    from repro.snapshot import cache as cache_mod

    cache_mod._MEM.clear()


class TestCorruptRecovery:
    def test_truncated_blob_recovers_cold(self, tmp_path, capsys):
        spec = _spec()
        key = ensure_snapshot(spec, str(tmp_path))
        cache = SnapshotCache(str(tmp_path))
        path = cache.path_for(key)
        with open(path, "wb") as fh:
            fh.write(b"\x00garbage")
        _wipe_mem_layer()

        forked = run_one_with_dir(spec, tmp_path)
        cold = run_one(_spec())
        assert forked.stats.as_dict() == cold.stats.as_dict()
        assert "[snapshot] discarding corrupt snapshot" in (
            capsys.readouterr().err
        )
        # the bad entry was replaced by a fresh, loadable one
        _wipe_mem_layer()
        assert isinstance(
            restore_core(SnapshotCache(str(tmp_path)).get_blob(key)).cycle,
            int,
        )

    def test_wrong_type_blob_rejected(self, tmp_path):
        cache = SnapshotCache(str(tmp_path))
        blob = pickle.dumps({"not": "a core"})
        try:
            restore_core(blob)
        except SnapshotError as exc:
            assert "not OoOCore" in str(exc)
        else:
            raise AssertionError("restore_core accepted a dict")


def run_one_with_dir(spec, tmp_path):
    spec = _spec(
        benchmark=spec.benchmark, scheme=spec.scheme, vdd=spec.vdd,
        n_instructions=spec.n_instructions, warmup=spec.warmup,
        seed=spec.seed,
    )
    spec.snapshot_dir = str(tmp_path)
    return run_one(spec)


class TestSharedStore:
    def test_snapshots_and_results_share_version_dir(self, tmp_path):
        root = str(tmp_path)
        spec = _spec()
        ensure_snapshot(spec, root)
        store = ResultCache(root)
        store.store(spec, run_one(_spec()))
        version_dir = os.path.join(root, model_version())
        names = sorted(os.listdir(version_dir))
        assert any(n.endswith(".snap") for n in names)
        assert any(n.endswith(".pkl") for n in names)

    def test_prune_stale_retires_both_kinds(self, tmp_path):
        root = str(tmp_path)
        spec = _spec()
        ensure_snapshot(spec, root)
        stale = os.path.join(root, "0123456789abcdef")
        os.makedirs(stale)
        with open(os.path.join(stale, "x.snap"), "wb") as fh:
            fh.write(b"old")
        with open(os.path.join(stale, "y.pkl"), "wb") as fh:
            fh.write(b"old")
        SnapshotCache(root).prune_stale()
        assert not os.path.exists(stale)
        assert os.path.exists(os.path.join(root, model_version()))


class TestPrewarm:
    def test_run_many_warms_each_prefix_once(self, tmp_path, monkeypatch):
        """A batch sharing one warmup prefix simulates that warmup once."""
        import repro.harness.runner as runner_mod

        warm_calls = []
        real_warm = runner_mod.warm_core

        def counting_warm(spec):
            warm_calls.append(spec.warmup_key())
            return real_warm(spec)

        monkeypatch.setattr(runner_mod, "warm_core", counting_warm)
        # fork.py binds warm_core at import time; patch it there too
        import repro.snapshot.fork as fork_mod

        monkeypatch.setattr(fork_mod, "warm_core", counting_warm)

        specs = [_spec(measurement_seed=m) for m in (1, 2, 3)]
        results = run_many(specs, snapshot_dir=str(tmp_path))
        assert len(warm_calls) == 1
        assert len({r.stats.committed for r in results}) == 1

    def test_cold_batch_without_snapshot_dir_still_works(self):
        specs = [_spec(), _spec(seed=6)]
        results = run_many(specs)
        assert all(r.stats.committed >= 2000 for r in results)
