"""Fork-from-snapshot must be bit-identical to a cold run.

This is the load-bearing property of the warmup cache: every stat, every
telemetry sample, every energy number of a forked run must equal the
cold run's exactly, across schemes, supplies, benchmarks, and the
measurement-window stressors (storms, telemetry, measurement reseeds)
that fork from a *clean* warmup.
"""

import pytest

from repro.core.schemes import SchemeKind
from repro.faults.storm import StormConfig
from repro.harness.runner import RunSpec, run_one
from repro.telemetry.config import TelemetryConfig


def _digest(result):
    """Everything observable about a result, as comparable plain data."""
    parts = {
        "stats": result.stats.as_dict(),
        "cache": dict(result.cache_stats),
        "energy": repr(result.energy.__dict__),
    }
    telemetry = getattr(result, "telemetry", None)
    if telemetry is not None and telemetry.metrics is not None:
        series = telemetry.metrics
        parts["telemetry"] = repr(
            [(name, list(values)) for name, values in
             sorted(series.series.items())]
            if hasattr(series, "series") else series.summary()
        )
    return parts


def _run_pairs(spec_kwargs, tmp_path):
    cold = run_one(RunSpec(**spec_kwargs))
    forked_spec = RunSpec(**spec_kwargs)
    forked_spec.snapshot_dir = str(tmp_path)
    forked = run_one(forked_spec)
    # second fork actually exercises the restore path (the first fork
    # may have warmed cold and stored)
    again_spec = RunSpec(**spec_kwargs)
    again_spec.snapshot_dir = str(tmp_path)
    again = run_one(again_spec)
    return cold, forked, again


GRID = [
    dict(benchmark="gcc", scheme=SchemeKind.ABS, vdd=0.97),
    dict(benchmark="astar", scheme=SchemeKind.CDS, vdd=1.04),
    dict(benchmark="bzip2", scheme=SchemeKind.FAULT_FREE, vdd=1.10),
    dict(benchmark="mcf", scheme=SchemeKind.RAZOR, vdd=0.97),
    dict(benchmark="gcc", scheme=SchemeKind.EP, vdd=0.97),
]


@pytest.mark.parametrize(
    "point", GRID, ids=[f"{g['benchmark']}-{g['scheme'].name}" for g in GRID]
)
def test_fork_equals_cold_across_grid(point, tmp_path):
    kwargs = dict(point, n_instructions=2500, warmup=1200, seed=5)
    cold, forked, again = _run_pairs(kwargs, tmp_path)
    assert _digest(forked) == _digest(cold)
    assert _digest(again) == _digest(cold)


def test_fork_equals_cold_with_telemetry(tmp_path):
    kwargs = dict(
        benchmark="gcc", scheme=SchemeKind.ABS, vdd=0.97,
        n_instructions=2500, warmup=1200, seed=5,
        telemetry=TelemetryConfig(metrics=True, interval=250),
    )
    cold, forked, again = _run_pairs(kwargs, tmp_path)
    assert _digest(forked) == _digest(cold)
    assert _digest(again) == _digest(cold)
    assert "telemetry" in _digest(cold)


def test_storm_draw_forks_from_clean_warmup(tmp_path):
    """A storm run and a clean run share one warmup snapshot."""
    clean = dict(
        benchmark="gcc", scheme=SchemeKind.ABS, vdd=0.97,
        n_instructions=2500, warmup=1200, seed=5,
    )
    stormy = dict(clean, storm=StormConfig(sensor_flap=0.01))
    assert RunSpec(**clean).warmup_key() == RunSpec(**stormy).warmup_key()

    cold, forked, again = _run_pairs(stormy, tmp_path)
    assert _digest(forked) == _digest(cold)
    assert _digest(again) == _digest(cold)
    # exactly one snapshot serves both flavors
    clean_spec = RunSpec(**clean)
    clean_spec.snapshot_dir = str(tmp_path)
    clean_cold = run_one(RunSpec(**clean))
    assert _digest(run_one(clean_spec)) == _digest(clean_cold)
    snaps = list(tmp_path.glob("*/*.snap"))
    assert len(snaps) == 1


def test_measurement_seed_varies_faults_not_program(tmp_path):
    base = dict(
        benchmark="gcc", scheme=SchemeKind.ABS, vdd=0.97,
        n_instructions=2500, warmup=1200, seed=5,
    )
    results = []
    for mseed in (11, 12):
        spec = RunSpec(**base, measurement_seed=mseed)
        spec.snapshot_dir = str(tmp_path)
        results.append(run_one(spec))
    a, b = results
    # same dynamic instruction stream (trace RNG is warmup-side) ...
    assert a.stats.committed == b.stats.committed
    assert a.stats.branches == b.stats.branches
    # ... but independent fault realizations
    assert a.stats.as_dict() != b.stats.as_dict()
    # and both are bit-identical to their own cold runs
    for mseed, forked in zip((11, 12), results):
        cold = run_one(RunSpec(**base, measurement_seed=mseed))
        assert _digest(forked) == _digest(cold)
