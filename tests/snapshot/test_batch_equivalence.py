"""Vector-vs-scalar equivalence: the batch engine must be invisible.

The lockstep batch engine (``repro.snapshot.batch`` +
``repro.uarch.batchcore``) exists purely as a throughput optimization:
for every lane, its SimStats digest, cache counters, and energy numbers
must equal the scalar snapshot-fork run bit for bit, and a campaign
journal written with batching on must be byte-identical to one written
with it off. The grid here crosses schemes × supply × storm on/off ×
lane counts N∈{1,4,16}, on both engine back ends (compiled kernel and
pure-numpy fallback), and a hypothesis test pins that forcing lane
evictions at arbitrary points (the mid-window divergence path) cannot
change any result.
"""

import pytest

from repro.core.schemes import SchemeKind
from repro.faults.storm import StormConfig
from repro.harness.parallel import run_many
from repro.harness.runner import RunSpec
from repro.uarch.batchstream import have_numpy

pytestmark = pytest.mark.skipif(
    not have_numpy(), reason="batch engine requires numpy"
)

POINT = dict(benchmark="gcc", n_instructions=600, warmup=300, seed=5)
SCHEMES = (SchemeKind.ABS, SchemeKind.EP)
VDDS = (0.97, 1.04)
LANE_COUNTS = (1, 4, 16)


def _digest(result):
    return {
        "stats": result.stats.as_dict(),
        "cache": dict(result.cache_stats),
        "energy": repr(result.energy.__dict__),
    }


def _specs(scheme, vdd, n, snap_dir, storm=None, first_mseed=1):
    out = []
    for i in range(n):
        spec = RunSpec(
            scheme=scheme, vdd=vdd, storm=storm,
            measurement_seed=first_mseed + i, **POINT,
        )
        spec.snapshot_dir = str(snap_dir)
        out.append(spec)
    return out


@pytest.fixture(scope="module")
def snap_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("snapshots")


@pytest.fixture(scope="module")
def scalar_ref(snap_dir):
    """Memoized scalar-path reference digests, keyed per lane spec."""
    memo = {}

    def ref(scheme, vdd, n):
        key = (scheme, vdd, n)
        if key not in memo:
            results = run_many(
                _specs(scheme, vdd, n, snap_dir), batch_lanes=0
            )
            memo[key] = [_digest(r) for r in results]
        return memo[key]

    return ref


@pytest.fixture(params=["kernel", "numpy"])
def engine_path(request, monkeypatch):
    from repro.uarch import batchkernel

    if request.param == "numpy":
        monkeypatch.setenv("REPRO_BATCH_KERNEL", "0")
    batchkernel.reset_kernel_cache()
    yield request.param
    batchkernel.reset_kernel_cache()


@pytest.mark.parametrize("n", LANE_COUNTS)
@pytest.mark.parametrize("vdd", VDDS)
@pytest.mark.parametrize(
    "scheme", SCHEMES, ids=[s.name for s in SCHEMES]
)
def test_batch_matches_scalar(scheme, vdd, n, snap_dir, scalar_ref,
                              engine_path):
    batched = run_many(
        _specs(scheme, vdd, n, snap_dir), batch_lanes=max(2, n)
    )
    assert [_digest(r) for r in batched] == scalar_ref(scheme, vdd, n)


@pytest.mark.parametrize("vdd", VDDS)
@pytest.mark.parametrize(
    "scheme", SCHEMES, ids=[s.name for s in SCHEMES]
)
def test_storm_specs_route_scalar_identically(scheme, vdd, snap_dir):
    """Storm draws are batch-ineligible; routing must not disturb them."""
    from repro.snapshot.batch import batch_eligible

    storm = StormConfig(burst_rate=0.001)
    specs = _specs(scheme, vdd, 4, snap_dir, storm=storm)
    assert not any(batch_eligible(s) for s in specs)
    batched = run_many(_specs(scheme, vdd, 4, snap_dir, storm=storm),
                       batch_lanes=4)
    scalar = run_many(_specs(scheme, vdd, 4, snap_dir, storm=storm),
                      batch_lanes=0)
    assert ([_digest(r) for r in batched]
            == [_digest(r) for r in scalar])


def _tiny_campaign_spec():
    from repro.campaign.plan import CampaignSpec

    return CampaignSpec(
        name="batch-equivalence", benchmarks=["gcc"],
        schemes=["ABS"], vdds=[0.97],
        n_instructions=POINT["n_instructions"], warmup=POINT["warmup"],
        min_seeds=4, max_seeds=4, batch_size=4,
    )


def test_campaign_journal_bytes_identical(tmp_path, snap_dir):
    """A batched campaign's journal and report are byte-equal to scalar."""
    from repro.campaign.executor import run_campaign

    outputs = {}
    for label, lanes in (("scalar", 0), ("batch", 4)):
        directory = tmp_path / label
        run_campaign(
            str(directory), spec=_tiny_campaign_spec(), cache=False,
            snapshot_dir=str(snap_dir), batch_lanes=lanes,
        )
        outputs[label] = {
            name: (directory / name).read_bytes()
            for name in ("journal.jsonl", "report.json")
        }
    assert outputs["batch"] == outputs["scalar"]


try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships with [dev]
    HAVE_HYPOTHESIS = False


if HAVE_HYPOTHESIS:

    @settings(
        max_examples=12, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        evictions=st.dictionaries(
            st.integers(min_value=0, max_value=3),
            # a 600-instruction window never commits in under ~100
            # virtual cycles, so every forced point lands mid-window
            st.integers(min_value=1, max_value=100),
            min_size=1, max_size=4,
        )
    )
    def test_forced_evictions_preserve_results(evictions, snap_dir,
                                               scalar_ref):
        """Evicting any lane at any cycle must not change any lane."""
        from repro.snapshot.batch import BatchReport, run_batch

        report = BatchReport()
        results = run_batch(
            _specs(SchemeKind.ABS, 0.97, 4, snap_dir), str(snap_dir),
            report, force_evict=evictions,
        )
        assert report.scalar_lanes >= len(evictions)
        assert ([_digest(r) for r in results]
                == scalar_ref(SchemeKind.ABS, 0.97, 4))
