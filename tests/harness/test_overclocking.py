"""Overclocked operation (tighter frequency at nominal supply)."""

import pytest

from repro.core.schemes import SchemeKind
from repro.faults.sensors import VoltageSensor
from repro.faults.timing import (
    StageTimingModel,
    TimingClass,
    VDD_NOMINAL,
    VoltageScaling,
)
from repro.faults.variation import ProcessVariationModel
from repro.harness.runner import RunSpec, run_one

_FAST = dict(n_instructions=2500, warmup=1200)


def test_criterion_frequency_factor(timing_model):
    import random

    frac = timing_model.sample_path_fraction(TimingClass.HOT,
                                             random.Random(1))
    # a HOT path is safe at nominal V/f but violates when the cycle time
    # shrinks past its guardband
    assert not timing_model.violates(frac, VDD_NOMINAL)
    assert timing_model.violates(frac, VDD_NOMINAL, frequency_factor=1.08)
    assert (
        timing_model.fault_margin(frac, VDD_NOMINAL, frequency_factor=1.08)
        > 0
    )


def test_nominal_frequency_no_faults():
    result = run_one(
        RunSpec("bzip2", SchemeKind.RAZOR, VDD_NOMINAL, overclock=1.0,
                **_FAST)
    )
    assert result.fault_rate == 0.0


def test_overclocking_causes_faults():
    result = run_one(
        RunSpec("bzip2", SchemeKind.RAZOR, VDD_NOMINAL, overclock=1.08,
                **_FAST)
    )
    assert result.fault_rate > 0.005


def test_fault_rate_grows_with_frequency():
    mild = run_one(
        RunSpec("bzip2", SchemeKind.RAZOR, VDD_NOMINAL, overclock=1.03,
                **_FAST)
    )
    hard = run_one(
        RunSpec("bzip2", SchemeKind.RAZOR, VDD_NOMINAL, overclock=1.09,
                **_FAST)
    )
    assert hard.fault_rate > mild.fault_rate


def test_sensor_armed_when_overclocked():
    assert VoltageSensor(VDD_NOMINAL, overclocked=True).favorable()
    assert not VoltageSensor(VDD_NOMINAL, overclocked=False).favorable()


def test_predictive_scheme_tolerates_overclock_faults():
    abs_run = run_one(
        RunSpec("bzip2", SchemeKind.ABS, VDD_NOMINAL, overclock=1.06,
                **_FAST)
    )
    razor = run_one(
        RunSpec("bzip2", SchemeKind.RAZOR, VDD_NOMINAL, overclock=1.06,
                **_FAST)
    )
    assert abs_run.stats.faults_predicted > 0
    assert abs_run.cycles < razor.cycles


def test_overclock_and_undervolt_compose(timing_model):
    import random

    frac = timing_model.sample_path_fraction(TimingClass.WARM,
                                             random.Random(2))
    # WARM: safe at 1.04V alone, violating with an extra frequency squeeze
    assert not timing_model.violates(frac, 1.04)
    assert timing_model.violates(frac, 1.04, frequency_factor=1.05)
