"""Batch engine: determinism, parallel/serial equivalence, result cache."""

import os
import pickle

import pytest

from repro.core.schemes import SchemeKind
from repro.faults.timing import VDD_LOW_FAULT, VDD_NOMINAL
from repro.harness.parallel import (
    ResultCache,
    model_version,
    run_many,
)
from repro.harness.runner import RunSpec, run_one
from repro.uarch.config import CoreConfig

_FAST = dict(n_instructions=600, warmup=300)


def _specs():
    return [
        RunSpec("bzip2", SchemeKind.ABS, VDD_LOW_FAULT, seed=2, **_FAST),
        RunSpec("astar", SchemeKind.RAZOR, VDD_LOW_FAULT, seed=1, **_FAST),
        RunSpec("bzip2", SchemeKind.FAULT_FREE, VDD_NOMINAL, seed=2, **_FAST),
    ]


def _fingerprint(result):
    return (
        result.stats.as_dict(),
        result.energy.total,
        result.energy.edp,
        dict(result.cache_stats),
    )


# ----------------------------------------------------------------------
# spec keys
# ----------------------------------------------------------------------
def test_key_is_deterministic():
    a, b = _specs()[0], _specs()[0]
    assert a is not b
    assert a.key() == b.key()
    assert len(a.key()) == 64  # sha256 hex


def test_key_distinguishes_every_field():
    base = RunSpec("bzip2", SchemeKind.ABS, VDD_LOW_FAULT, seed=2, **_FAST)
    variants = [
        RunSpec("astar", SchemeKind.ABS, VDD_LOW_FAULT, seed=2, **_FAST),
        RunSpec("bzip2", SchemeKind.CDS, VDD_LOW_FAULT, seed=2, **_FAST),
        RunSpec("bzip2", SchemeKind.ABS, VDD_NOMINAL, seed=2, **_FAST),
        RunSpec("bzip2", SchemeKind.ABS, VDD_LOW_FAULT, seed=3, **_FAST),
        RunSpec("bzip2", SchemeKind.ABS, VDD_LOW_FAULT, seed=2,
                n_instructions=700, warmup=300),
        RunSpec("bzip2", SchemeKind.ABS, VDD_LOW_FAULT, seed=2,
                predictor="mre", **_FAST),
        RunSpec("bzip2", SchemeKind.ABS, VDD_LOW_FAULT, seed=2,
                overclock=1.04, **_FAST),
        RunSpec("bzip2", SchemeKind.ABS, VDD_LOW_FAULT, seed=2,
                config=CoreConfig.core2(), **_FAST),
    ]
    keys = {spec.key() for spec in variants}
    assert base.key() not in keys
    assert len(keys) == len(variants)


def test_key_config_sensitivity():
    a = RunSpec("bzip2", config=CoreConfig.core1(), **_FAST)
    b = RunSpec("bzip2", config=CoreConfig.core1(), **_FAST)
    c = RunSpec("bzip2", config=CoreConfig.core1(rob_size=64), **_FAST)
    assert a.key() == b.key()
    assert a.key() != c.key()


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
def test_same_spec_twice_is_bit_identical():
    spec = _specs()[0]
    a = run_one(spec)
    b = run_one(spec)
    assert _fingerprint(a) == _fingerprint(b)
    assert pickle.dumps(_fingerprint(a)) == pickle.dumps(_fingerprint(b))


def test_run_many_matches_serial_run_one():
    specs = _specs()
    serial = [run_one(spec) for spec in specs]
    batched = run_many(_specs(), jobs=1)
    assert [_fingerprint(r) for r in batched] == [
        _fingerprint(r) for r in serial
    ]


def test_run_many_parallel_matches_serial():
    specs = _specs()
    serial = [run_one(spec) for spec in specs]
    parallel = run_many(_specs(), jobs=4)
    assert [_fingerprint(r) for r in parallel] == [
        _fingerprint(r) for r in serial
    ]


def test_run_many_dedupes_identical_specs():
    spec = _specs()[0]
    twice = run_many([spec, _specs()[0]], jobs=1)
    assert _fingerprint(twice[0]) == _fingerprint(twice[1])


# ----------------------------------------------------------------------
# on-disk cache
# ----------------------------------------------------------------------
def test_cache_round_trip(tmp_path):
    spec = _specs()[0]
    first = run_many([spec], jobs=1, cache=True, cache_dir=tmp_path)[0]
    entries = list((tmp_path / model_version()).glob("*.pkl"))
    assert len(entries) == 1
    assert entries[0].name == spec.key() + ".pkl"
    second = run_many([spec], jobs=1, cache=True, cache_dir=tmp_path)[0]
    assert _fingerprint(first) == _fingerprint(second)


def test_cache_hit_skips_simulation(tmp_path, monkeypatch):
    spec = _specs()[0]
    run_many([spec], jobs=1, cache=True, cache_dir=tmp_path)

    def boom(_):
        raise AssertionError("cache miss: simulation re-ran")

    monkeypatch.setattr("repro.harness.parallel.run_one", boom)
    cache = ResultCache(tmp_path)
    result = run_many([spec], jobs=1, cache=cache)[0]
    assert cache.hits == 1
    assert result.stats.committed >= spec.n_instructions


def test_cache_is_versioned_by_model(tmp_path):
    spec = _specs()[0]
    run_many([spec], jobs=1, cache=True, cache_dir=tmp_path)
    stale = tmp_path / "0123456789abcdef"
    stale.mkdir()
    (stale / "junk.pkl").write_bytes(b"junk")
    cache = ResultCache(tmp_path)
    assert cache.version == model_version()
    cache.prune_stale()
    assert not stale.exists()
    assert (tmp_path / model_version() / (spec.key() + ".pkl")).exists()


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    spec = _specs()[0]
    path = tmp_path / model_version() / (spec.key() + ".pkl")
    os.makedirs(path.parent, exist_ok=True)
    path.write_bytes(b"not a pickle")
    result = run_many([spec], jobs=1, cache=True, cache_dir=tmp_path)[0]
    assert result.stats.committed >= spec.n_instructions
    with open(path, "rb") as fh:  # overwritten with the good result
        assert _fingerprint(pickle.load(fh)) == _fingerprint(result)


def test_corrupt_cache_entry_is_logged_and_unlinked(tmp_path, capsys):
    spec = _specs()[0]
    path = tmp_path / model_version() / (spec.key() + ".pkl")
    os.makedirs(path.parent, exist_ok=True)
    path.write_bytes(b"\x80\x05garbage")
    cache = ResultCache(tmp_path)
    assert cache.load(spec) is None
    assert cache.misses == 1
    assert "discarding unreadable entry" in capsys.readouterr().err
    assert not path.exists()  # bad bytes don't linger for the next batch


def test_truncated_cache_entry_is_a_miss(tmp_path):
    spec = _specs()[0]
    result = run_one(spec)
    cache = ResultCache(tmp_path)
    cache.store(spec, result)
    path = tmp_path / model_version() / (spec.key() + ".pkl")
    payload = path.read_bytes()
    path.write_bytes(payload[: len(payload) // 2])  # torn write
    assert ResultCache(tmp_path).load(spec) is None
    # the whole batch recomputes and heals the entry rather than crashing
    healed = run_many([spec], jobs=1, cache=True, cache_dir=tmp_path)[0]
    assert _fingerprint(healed) == _fingerprint(result)


def test_unpicklable_class_reference_is_a_miss(tmp_path):
    # a stale entry pickled against renamed classes raises on load;
    # it must cost one recompute, never a crashed batch
    spec = _specs()[0]
    path = tmp_path / model_version() / (spec.key() + ".pkl")
    os.makedirs(path.parent, exist_ok=True)
    payload = pickle.dumps(ResultCache).replace(
        b"ResultCache", b"GhostResult"
    )
    path.write_bytes(payload)
    assert ResultCache(tmp_path).load(spec) is None


def test_cached_result_survives_pickle_round_trip(tmp_path):
    spec = _specs()[1]
    result = run_many([spec], jobs=1, cache=True, cache_dir=tmp_path)[0]
    clone = pickle.loads(pickle.dumps(result))
    assert _fingerprint(clone) == _fingerprint(result)
    assert clone.spec.key() == spec.key()


def test_model_version_is_stable():
    assert model_version() == model_version()
    assert len(model_version()) == 16


# ----------------------------------------------------------------------
# sweeps ride the engine
# ----------------------------------------------------------------------
def test_sweep_prefetch_matches_lazy_results(tmp_path):
    from repro.harness.experiments import SchedulingSweep

    lazy = SchedulingSweep(VDD_LOW_FAULT, benchmarks=["astar"], **_FAST)
    eager = SchedulingSweep(
        VDD_LOW_FAULT, benchmarks=["astar"], cache=True,
        cache_dir=tmp_path, **_FAST,
    )
    eager.prefetch((SchemeKind.FAULT_FREE, SchemeKind.ABS))
    for scheme in (SchemeKind.FAULT_FREE, SchemeKind.ABS):
        assert _fingerprint(eager.result("astar", scheme)) == _fingerprint(
            lazy.result("astar", scheme)
        )


@pytest.mark.parametrize("jobs", [0, None])
def test_jobs_zero_or_none_uses_all_cores(jobs):
    results = run_many(_specs()[:1], jobs=jobs)
    assert results[0].stats.committed >= _FAST["n_instructions"]


def test_experiment_driver_results_equal_across_jobs():
    from repro.harness.experiments import calibration, shmoo

    serial = calibration(benchmarks=["astar"], **_FAST)
    fanned = calibration(benchmarks=["astar"], jobs=2, **_FAST)
    assert fanned.data == serial.data
    assert fanned.render() == serial.render()

    serial = shmoo(benchmarks=["astar"], vdds=(1.04,),
                   overclocks=(1.0, 1.04), **_FAST)
    fanned = shmoo(benchmarks=["astar"], vdds=(1.04,),
                   overclocks=(1.0, 1.04), jobs=2, **_FAST)
    assert fanned.data == serial.data


# ----------------------------------------------------------------------
# concurrent-process safety of the shared cache directory
# ----------------------------------------------------------------------
def test_store_retries_when_version_dir_pruned_concurrently(
    tmp_path, monkeypatch
):
    import shutil

    spec = _specs()[0]
    result = run_one(spec)
    cache = ResultCache(tmp_path)
    real_replace = os.replace
    raced = {"n": 0}

    def racing_replace(src, dst):
        # first attempt: a concurrent prune deletes the version dir
        # between our makedirs and the rename
        if raced["n"] == 0 and dst.endswith(".pkl"):
            raced["n"] += 1
            shutil.rmtree(os.path.dirname(dst))
            raise FileNotFoundError(dst)
        return real_replace(src, dst)

    monkeypatch.setattr(os, "replace", racing_replace)
    cache.store(spec, result)
    assert raced["n"] == 1
    loaded = ResultCache(tmp_path).load(spec)
    assert loaded is not None
    assert _fingerprint(loaded) == _fingerprint(result)


def test_store_tmp_names_unique_within_process(tmp_path):
    spec = _specs()[0]
    result = run_one(spec)
    cache = ResultCache(tmp_path)
    before = ResultCache._tmp_counter
    cache.store(spec, result)
    cache.store(spec, result)
    assert ResultCache._tmp_counter >= before + 2
    # no stray tmp files linger after successful stores
    leftovers = [
        name for name in os.listdir(tmp_path / model_version())
        if ".tmp." in name
    ]
    assert leftovers == []


def test_concurrent_prunes_tolerate_each_other(tmp_path):
    spec = _specs()[0]
    run_many([spec], jobs=1, cache=True, cache_dir=tmp_path)
    for fake in ("aaaa000011112222", "bbbb000011112222"):
        stale = tmp_path / fake
        stale.mkdir()
        (stale / "junk.pkl").write_bytes(b"junk")
    a, b = ResultCache(tmp_path), ResultCache(tmp_path)
    a.prune_stale()
    b.prune_stale()  # second prune sees nothing stale; must not raise
    remaining = sorted(os.listdir(tmp_path))
    assert remaining == [model_version()]
    assert ResultCache(tmp_path).load(spec) is not None


def test_prune_sweeps_orphaned_trash_dirs(tmp_path):
    cache = ResultCache(tmp_path)
    orphan = tmp_path / ".trash-deadbeef-12345"
    orphan.mkdir()
    (orphan / "junk.pkl").write_bytes(b"junk")
    cache.prune_stale()
    assert not orphan.exists()


def test_prune_missing_root_is_noop(tmp_path):
    ResultCache(tmp_path / "never-created").prune_stale()


def test_two_campaign_style_writers_share_a_cache_dir(tmp_path):
    # two ResultCache instances (stand-ins for two campaign processes)
    # interleave stores, loads, and prunes without corruption
    specs = _specs()
    writer_a, writer_b = ResultCache(tmp_path), ResultCache(tmp_path)
    results = [run_one(spec) for spec in specs]
    writer_a.store(specs[0], results[0])
    writer_b.store(specs[1], results[1])
    writer_a.prune_stale()
    writer_b.store(specs[2], results[2])
    writer_b.store(specs[0], results[0])  # overwrite in place
    for spec, result in zip(specs, results):
        for reader in (writer_a, writer_b):
            assert _fingerprint(reader.load(spec)) == _fingerprint(result)
