"""Calibration against the paper's Table 1 (IPC and fault-rate bands).

These are the contract the workload profiles were tuned to: fault-free IPC
within a moderate tolerance of the paper's per-benchmark IPC, and dynamic
fault rates in the right band at each faulty voltage.
"""

import pytest

from repro.core.schemes import SchemeKind
from repro.faults.timing import VDD_HIGH_FAULT, VDD_LOW_FAULT, VDD_NOMINAL
from repro.harness.runner import RunSpec, run_one
from repro.workloads.profiles import SPEC2006_PROFILES

_FAST = dict(n_instructions=4000, warmup=2000, seed=1)


@pytest.mark.parametrize("bench", sorted(SPEC2006_PROFILES))
def test_fault_free_ipc_near_paper(bench):
    profile = SPEC2006_PROFILES[bench]
    result = run_one(
        RunSpec(bench, SchemeKind.FAULT_FREE, VDD_NOMINAL, **_FAST)
    )
    assert result.ipc == pytest.approx(profile.ipc_paper, rel=0.40)


def test_ipc_ordering_extremes():
    # the paper's fastest and slowest benchmarks must stay ordered
    def ipc(b):
        return run_one(
            RunSpec(b, SchemeKind.FAULT_FREE, VDD_NOMINAL, **_FAST)
        ).ipc

    assert ipc("povray") > 2.5 * ipc("mcf")
    assert ipc("sjeng") > 2.0 * ipc("xalancbmk")


@pytest.mark.parametrize("bench", ["astar", "sjeng", "libquantum"])
def test_fault_rates_scale_with_voltage(bench):
    profile = SPEC2006_PROFILES[bench]
    low = run_one(RunSpec(bench, SchemeKind.RAZOR, VDD_LOW_FAULT, **_FAST))
    high = run_one(
        RunSpec(bench, SchemeKind.RAZOR, VDD_HIGH_FAULT, **_FAST)
    )
    assert high.fault_rate > low.fault_rate
    assert low.fault_rate == pytest.approx(profile.fr_low, rel=0.8)
    assert high.fault_rate == pytest.approx(profile.fr_high, rel=0.8)
