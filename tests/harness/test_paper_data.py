"""Internal consistency of the transcribed paper data."""

import pytest

from repro.harness.paper_data import (
    HIGH_FR_BENCHMARKS,
    PAPER_CLAIMS,
    PAPER_FIG7_AVG,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
)
from repro.workloads.profiles import SPEC2006_PROFILES


def test_table1_covers_all_benchmarks():
    assert set(PAPER_TABLE1) == set(SPEC2006_PROFILES)


def test_profiles_target_the_published_fault_rates():
    for name, row in PAPER_TABLE1.items():
        profile = SPEC2006_PROFILES[name]
        assert profile.fr_low == pytest.approx(row.fr_low / 100, rel=1e-6)
        assert profile.fr_high == pytest.approx(row.fr_high / 100, rel=1e-6)
        assert profile.ipc_paper == pytest.approx(row.ipc, abs=0.02)


def test_high_fr_always_exceeds_low_fr():
    for row in PAPER_TABLE1.values():
        assert row.fr_high > row.fr_low


def test_razor_always_worse_than_ep_in_the_paper():
    for row in PAPER_TABLE1.values():
        assert row.razor_high[0] > row.ep_high[0]
        assert row.razor_low[0] > row.ep_low[0]
        # ED degradation always at least the performance degradation
        assert row.razor_high[1] >= row.razor_high[0]


def test_fig8_omits_povray():
    assert "povray" not in HIGH_FR_BENCHMARKS
    assert len(HIGH_FR_BENCHMARKS) == 11


def test_table2_structure():
    assert PAPER_TABLE2["ABS"] == PAPER_TABLE2["FFS"]
    assert PAPER_TABLE2["CDS"]["sched"][0] > PAPER_TABLE2["ABS"]["sched"][0]
    for entry in PAPER_TABLE2.values():
        assert all(v < 0.3 for v in entry["core"])  # core-level tiny


def test_table3_alu_largest():
    gates = {name: g for name, (g, _) in PAPER_TABLE3.items()}
    assert gates["ALU"] == max(gates.values())
    depths = {name: d for name, (_, d) in PAPER_TABLE3.items()}
    assert depths["ForwardCheck"] == min(depths.values())


def test_fig7_averages_in_band():
    for value in PAPER_FIG7_AVG.values():
        assert 0.85 < value < 0.95


def test_claims_band():
    lo, hi = PAPER_CLAIMS["reduction_band"]
    assert lo == 0.64 and hi == 0.97
    for key in ("perf_reduction_low_fr", "ed_reduction_low_fr",
                "perf_reduction_high_fr", "ed_reduction_high_fr"):
        assert lo <= PAPER_CLAIMS[key] <= hi
