"""Cross-feature interactions: schemes x overclock x predictors x memdep."""

import pytest

from repro.core.schemes import SchemeKind
from repro.harness.runner import RunSpec, run_one
from repro.uarch.config import CoreConfig

_FAST = dict(n_instructions=1500, warmup=700)


def test_ep_tolerates_overclock_faults_with_stalls():
    result = run_one(
        RunSpec("bzip2", SchemeKind.EP, 1.10, overclock=1.06, **_FAST)
    )
    assert result.stats.faults_predicted > 0
    assert result.stats.ep_stalls > 0


def test_store_sets_compose_with_fault_tolerance():
    config = CoreConfig.core1(mem_dependence="store_sets")
    result = run_one(
        RunSpec("mcf", SchemeKind.ABS, 0.97, config=config, **_FAST)
    )
    assert result.stats.committed >= _FAST["n_instructions"]
    assert result.stats.faults_total > 0
    assert result.stats.replays < result.stats.faults_total


def test_flush_mode_composes_with_ep():
    config = CoreConfig.core1(replay_mode="flush")
    result = run_one(
        RunSpec("astar", SchemeKind.EP, 0.97, config=config, **_FAST)
    )
    assert result.stats.committed >= _FAST["n_instructions"]
    # predicted faults stall; only the unpredicted ones flush
    assert result.stats.ep_stalls > 0


def test_mre_predictor_with_cds_scheme():
    result = run_one(
        RunSpec("libquantum", SchemeKind.CDS, 0.97, predictor="mre", **_FAST)
    )
    assert result.stats.committed >= _FAST["n_instructions"]
    assert result.stats.faults_predicted > 0


def test_overclock_and_undervolt_stack():
    mild = run_one(RunSpec("bzip2", SchemeKind.RAZOR, 1.04, **_FAST))
    stacked = run_one(
        RunSpec("bzip2", SchemeKind.RAZOR, 1.04, overclock=1.05, **_FAST)
    )
    assert stacked.fault_rate > mild.fault_rate


def test_narrow_core_with_faults():
    config = CoreConfig.core2()
    base = run_one(
        RunSpec("gcc", SchemeKind.FAULT_FREE, 0.97, config=config, **_FAST)
    )
    abs_run = run_one(
        RunSpec("gcc", SchemeKind.ABS, 0.97, config=config, **_FAST)
    )
    razor = run_one(
        RunSpec("gcc", SchemeKind.RAZOR, 0.97, config=config, **_FAST)
    )
    assert abs_run.perf_overhead(base) < razor.perf_overhead(base)


def test_determinism_across_feature_matrix():
    spec_kwargs = dict(
        predictor="mre", overclock=1.03,
        config=CoreConfig.core1(mem_dependence="store_sets",
                                replay_mode="flush"),
        **_FAST,
    )
    a = run_one(RunSpec("astar", SchemeKind.FFS, 1.04, **spec_kwargs))
    b = run_one(RunSpec("astar", SchemeKind.FFS, 1.04, **spec_kwargs))
    assert a.stats.as_dict() == b.stats.as_dict()
