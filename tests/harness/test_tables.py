"""Text table/bar rendering."""

from repro.harness.tables import format_bar_series, format_table


def test_table_has_header_separator_rows():
    text = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert set(lines[2]) <= {"-", "+"}
    assert len(lines) == 5


def test_table_floats_formatted():
    text = format_table(["x"], [[1.23456]])
    assert "1.235" in text


def test_table_columns_aligned():
    text = format_table(["col"], [[1], [100]])
    rows = text.splitlines()[2:]
    assert len(rows[0]) == len(rows[1])


def test_bar_series_scales_to_peak():
    text = format_bar_series(
        "B", ["x"], {"s1": {"x": 1.0}, "s2": {"x": 0.5}}, max_width=10
    )
    lines = text.splitlines()
    s1_bar = [l for l in lines if "s1" in l][0]
    s2_bar = [l for l in lines if "s2" in l][0]
    assert s1_bar.count("#") == 10
    assert s2_bar.count("#") == 5


def test_bar_series_skips_missing_categories():
    text = format_bar_series("B", ["x", "y"], {"s": {"x": 1.0}})
    assert "y:" in text
    assert text.count("#") >= 1


def test_bar_series_handles_all_zero():
    text = format_bar_series("B", ["x"], {"s": {"x": 0.0}})
    assert "0.000" in text
