"""Multi-seed statistics."""

import pytest

from repro.core.schemes import SchemeKind
from repro.harness.multiseed import MultiSeedResult, SeedStatistic, run_seeds


class TestSeedStatistic:
    def test_mean_and_std(self):
        stat = SeedStatistic([1.0, 2.0, 3.0])
        assert stat.mean == pytest.approx(2.0)
        assert stat.std == pytest.approx(1.0)
        assert stat.ci95 == pytest.approx(1.96 / 3 ** 0.5)

    def test_single_value(self):
        stat = SeedStatistic([5.0])
        assert stat.mean == 5.0
        assert stat.std == 0.0
        assert stat.ci95 == 0.0

    def test_requires_values(self):
        with pytest.raises(ValueError):
            SeedStatistic([])


def test_run_seeds_pairs_baselines():
    result = run_seeds(
        "astar", SchemeKind.ABS, 0.97, seeds=(1, 2),
        n_instructions=1500, warmup=700,
    )
    assert isinstance(result, MultiSeedResult)
    assert result.perf_overhead.n == 2
    # paired baselines: overheads are small positive numbers, not the
    # huge seed-to-seed IPC variation
    assert -0.02 < result.perf_overhead.mean < 0.5
    assert result.fault_rate.mean > 0.01
    assert result.ipc.mean > 0.1


def test_overheads_more_stable_than_ipc():
    result = run_seeds(
        "bzip2", SchemeKind.EP, 0.97, seeds=(1, 2, 3),
        n_instructions=1500, warmup=700,
    )
    # relative spread of the paired overhead is far below the workload's
    # raw IPC spread would be unpaired; sanity: CI is finite and modest
    assert result.perf_overhead.ci95 < 0.25
