"""Integration: the paper's qualitative result shape must hold.

Razor >> Error Padding >> {ABS, FFS, CDS}; the proposed schemes recover a
large fraction of EP's overhead (the paper reports 64-97%).
"""

import pytest

from repro.core.schemes import SchemeKind
from repro.faults.timing import VDD_HIGH_FAULT
from repro.harness.experiments import SchedulingSweep

_BENCHMARKS = ["astar", "sjeng"]


@pytest.fixture(scope="module")
def sweep():
    return SchedulingSweep(
        VDD_HIGH_FAULT, n_instructions=5000, warmup=2500, seed=1,
        benchmarks=_BENCHMARKS,
    )


@pytest.mark.parametrize("bench", _BENCHMARKS)
def test_razor_much_worse_than_ep(sweep, bench):
    razor = sweep.perf_overhead(bench, SchemeKind.RAZOR)
    ep = sweep.perf_overhead(bench, SchemeKind.EP)
    assert razor > 1.5 * ep


@pytest.mark.parametrize("bench", _BENCHMARKS)
@pytest.mark.parametrize("scheme", [SchemeKind.ABS, SchemeKind.FFS,
                                    SchemeKind.CDS])
def test_proposed_schemes_beat_ep(sweep, bench, scheme):
    proposed = sweep.perf_overhead(bench, scheme)
    ep = sweep.perf_overhead(bench, SchemeKind.EP)
    assert proposed < ep


@pytest.mark.parametrize("bench", _BENCHMARKS)
def test_reduction_in_paper_band(sweep, bench):
    ep = sweep.perf_overhead(bench, SchemeKind.EP)
    best = min(
        sweep.perf_overhead(bench, s)
        for s in (SchemeKind.ABS, SchemeKind.FFS, SchemeKind.CDS)
    )
    reduction = 1.0 - best / ep
    # paper band is 64-97%; allow generous slack at this test's very small
    # scale (sjeng — the highest-ILP, least-slack benchmark — recovers
    # least; the benchmark suite asserts tighter bounds at larger scale)
    assert reduction > 0.35


@pytest.mark.parametrize("bench", _BENCHMARKS)
def test_ed_overheads_track_performance(sweep, bench):
    for scheme in (SchemeKind.RAZOR, SchemeKind.EP, SchemeKind.ABS):
        perf = sweep.perf_overhead(bench, scheme)
        ed = sweep.ed_overhead(bench, scheme)
        assert ed >= perf * 0.9  # ED compounds delay with energy


def test_fault_rates_consistent_across_schemes(sweep):
    rates = [
        sweep.result("astar", s).fault_rate
        for s in (SchemeKind.RAZOR, SchemeKind.EP, SchemeKind.ABS)
    ]
    assert max(rates) < 2.0 * min(rates)
