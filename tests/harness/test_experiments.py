"""Experiment definitions (small-scale smoke + structure checks)."""

import math

import pytest

from repro.harness import experiments
from repro.harness.experiments import SchedulingSweep
from repro.core.schemes import SchemeKind
from repro.faults.timing import VDD_LOW_FAULT

_FAST = dict(n_instructions=1200, warmup=600, seed=2)
_BENCH = ["astar", "sjeng"]


@pytest.fixture(scope="module")
def sweep():
    return SchedulingSweep(VDD_LOW_FAULT, benchmarks=_BENCH, **_FAST)


class TestSweep:
    def test_results_cached(self, sweep):
        a = sweep.result("astar", SchemeKind.EP)
        b = sweep.result("astar", SchemeKind.EP)
        assert a is b

    def test_relative_overheads_structure(self, sweep):
        series = sweep.relative_overheads("perf")
        assert set(series) == {"ABS", "FFS", "CDS"}
        for by_bench in series.values():
            for value in by_bench.values():
                assert value >= 0.0


class TestFigures:
    def test_fig4_has_averages(self):
        result = experiments.fig4(benchmarks=_BENCH, **_FAST)
        assert set(result.data["averages"]) == {"ABS", "FFS", "CDS"}
        assert "Figure 4" in result.render()

    def test_fig8_uses_high_fault_voltage(self):
        result = experiments.fig8(benchmarks=["astar"], **_FAST)
        assert result.data["vdd"] == pytest.approx(0.97)

    def test_schemes_beat_ep_on_average(self):
        result = experiments.fig4(benchmarks=_BENCH, **_FAST)
        for avg in result.data["averages"].values():
            if not math.isnan(avg):
                assert avg < 1.0  # below the EP baseline


class TestTable1:
    def test_rows_and_render(self):
        result = experiments.table1(benchmarks=["astar"], **_FAST)
        entry = result.data["astar"]
        assert entry["ipc"] > 0
        assert 0.97 in entry and 1.04 in entry
        assert entry[0.97]["fr"] > entry[1.04]["fr"]
        assert "Table 1" in result.render()

    def test_razor_worse_than_ep(self):
        result = experiments.table1(benchmarks=["sjeng"], **_FAST)
        at_097 = result.data["sjeng"][0.97]
        assert at_097["razor"][0] > at_097["ep"][0]


class TestCircuitExperiments:
    def test_table2_structure(self):
        result = experiments.table2()
        assert set(result.data) == {"ABS", "FFS", "CDS"}
        assert result.data["CDS"]["sched"].area > result.data["ABS"]["sched"].area
        assert "Table 2" in result.render()

    def test_table3_reports_four_components(self):
        result = experiments.table3()
        assert set(result.data) == {
            "IssueQSelect", "ALU", "AGen", "ForwardCheck"
        }
        assert result.data["ALU"].n_gates > result.data["AGen"].n_gates

    def test_fig7_commonality_in_band(self):
        result = experiments.fig7(seed=3)
        for component, avg in result.data["averages"].items():
            assert 0.7 < avg <= 1.0
        series = result.data["series"]
        # vortex is the most input-local benchmark in every component
        for component in ("IssueQSelect", "AGen", "ForwardCheck", "ALU"):
            vortex = series["vortex"][component]
            assert vortex == max(s[component] for s in series.values())


def test_experiment_registry_complete():
    assert set(experiments.EXPERIMENTS) == {
        "table1", "fig4", "fig5", "fig8", "fig9",
        "table2", "table3", "fig7", "headline", "calibration", "shmoo",
    }


def test_shmoo_grid():
    result = experiments.shmoo(
        n_instructions=800, warmup=400, benchmarks=["astar"],
        vdds=(1.10, 0.97), overclocks=(1.0, 1.06),
    )
    assert len(result.data) == 4
    nominal = result.data[(1.10, 1.0)]
    assert nominal["fault_rate"] == 0.0
    assert nominal["throughput"] == pytest.approx(1.0)
    assert result.data[(0.97, 1.0)]["fault_rate"] > 0
    assert "Shmoo" in result.render()


def test_calibration_report():
    result = experiments.calibration(benchmarks=["astar"], **_FAST)
    assert "astar" in result.data["rows"]
    assert 0 <= result.data["mean_ipc_err"] < 1.0
    assert "Calibration" in result.render()
