"""The warmup/measurement partition of RunSpec.canonical() is exhaustive.

The snapshot cache is sound only if every field of a spec lands in
exactly one half of the canonical form: a warmup-relevant field leaking
into the measurement suffix would alias different warmups onto one
snapshot; a measurement-only field in the warmup prefix would merely
shrink sharing, but would silently break the warm-once economics these
tests also pin. So: every constructor field must move exactly one half,
and ``canonical()`` must be exactly the concatenation of the two.

``verify`` and ``corruption`` sit in the measurement suffix even though
a corruption hook mutates state *during* warmup — that is sound only
because ``snapshot_eligible`` refuses both, which
``test_eligibility_covers_the_partition_caveats`` pins.
"""

from repro.core.schemes import SchemeKind
from repro.faults.storm import StormConfig
from repro.harness.runner import RunSpec
from repro.snapshot import snapshot_eligible
from repro.telemetry.config import TelemetryConfig
from repro.uarch.config import CoreConfig


def _base(**kw):
    return RunSpec("astar", SchemeKind.ABS, 0.97, n_instructions=4000,
                   warmup=2000, seed=3, **kw)


#: constructor field -> (mutated value, half it must land in)
MUTATIONS = {
    "benchmark": ("bzip2", "warmup"),
    "scheme": (SchemeKind.EP, "warmup"),
    "vdd": (1.04, "warmup"),
    "n_instructions": (5000, "warmup"),
    "warmup": (1000, "warmup"),
    "seed": (4, "warmup"),
    "config": (CoreConfig.core1(), "warmup"),
    "tep_config": ("_tep_", "warmup"),
    "predictor": ("mre", "warmup"),
    "overclock": (1.1, "warmup"),
    "measurement_seed": (17, "measurement"),
    "storm": (StormConfig(), "measurement"),
    "verify": (True, "measurement"),
    "corruption": ({"kind": "regval", "rate": 0.1}, "measurement"),
    "telemetry": (TelemetryConfig(metrics=True, interval=500),
                  "measurement"),
}


def _mutated(field, value):
    if field == "tep_config":
        from repro.core.tep import TEPConfig

        value = TEPConfig(n_entries=32)
    spec = _base()
    setattr(spec, field, value)
    return spec


def test_every_constructor_field_is_partitioned():
    """Mutating any field changes exactly the half the table says."""
    import inspect

    params = [
        name for name in inspect.signature(RunSpec.__init__).parameters
        if name != "self"
    ]
    # the table covers the constructor exhaustively: a new RunSpec field
    # must be classified here before it can ship
    assert sorted(params) == sorted(MUTATIONS)

    base = _base()
    for field, (value, half) in MUTATIONS.items():
        spec = _mutated(field, value)
        warmup_moved = spec.warmup_canonical() != base.warmup_canonical()
        measurement_moved = (
            spec.measurement_canonical() != base.measurement_canonical()
        )
        assert warmup_moved == (half == "warmup"), field
        assert measurement_moved == (half == "measurement"), field


def test_canonical_is_exactly_the_concatenation():
    for field, (value, _) in MUTATIONS.items():
        spec = _mutated(field, value)
        assert spec.canonical() == (
            spec.warmup_canonical() + spec.measurement_canonical()
        )


def test_keys_follow_the_partition():
    base = _base()
    for field, (value, half) in MUTATIONS.items():
        spec = _mutated(field, value)
        assert spec.key() != base.key(), field
        if half == "warmup":
            assert spec.warmup_key() != base.warmup_key(), field
        else:
            assert spec.warmup_key() == base.warmup_key(), field


def test_execution_details_touch_neither_half():
    spec = _base()
    spec.repro_dir = "/tmp/somewhere"
    spec.snapshot_dir = "/tmp/elsewhere"
    assert spec.canonical() == _base().canonical()


def test_eligibility_covers_the_partition_caveats():
    """The measurement-suffix placement of verify/corruption is safe only
    because neither can ever be served from a snapshot."""
    assert snapshot_eligible(_base())
    assert not snapshot_eligible(_mutated("verify", True))
    assert not snapshot_eligible(
        _mutated("corruption", {"kind": "regval", "rate": 0.1})
    )
    no_warmup = _base()
    no_warmup.warmup = 0
    assert not snapshot_eligible(no_warmup)
    # storm and measurement seed DO fork: they are the point of the cache
    assert snapshot_eligible(_mutated("storm", StormConfig()))
    assert snapshot_eligible(_mutated("measurement_seed", 17))
