"""CLI entry point."""

import pytest

from repro.harness.cli import main


def test_table3_runs(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out
    assert "ALU" in out


def test_table2_runs(capsys):
    assert main(["table2"]) == 0
    assert "CDS" in capsys.readouterr().out


def test_scaled_down_figure(capsys):
    code = main([
        "fig4", "--instructions", "800", "--warmup", "400",
        "--benchmarks", "astar",
    ])
    assert code == 0
    assert "Figure 4" in capsys.readouterr().out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_run_subcommand(capsys):
    code = main([
        "run", "--benchmarks", "astar", "--scheme", "razor",
        "--vdd", "1.04", "--instructions", "600", "--warmup", "300",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "ipc" in out and "fault_rate" in out


def test_run_subcommand_with_trace(capsys):
    code = main([
        "run", "--benchmarks", "astar", "--instructions", "600",
        "--warmup", "300", "--trace", "6",
    ])
    assert code == 0
    assert "f=fetch" in capsys.readouterr().out


def test_run_subcommand_json(tmp_path, capsys):
    out = tmp_path / "r.json"
    code = main([
        "run", "--benchmarks", "astar", "--instructions", "600",
        "--warmup", "300", "--json", str(out),
    ])
    assert code == 0
    import json

    assert json.loads(open(out).read())["spec"]["benchmark"] == "astar"


def test_help_lists_experiments(capsys):
    with pytest.raises(SystemExit):
        main(["--help"])
    out = capsys.readouterr().out
    assert "table1" in out and "fig7" in out
