"""Run drivers: determinism, baselines, cache priming."""

import pytest

from repro.core.schemes import SchemeKind
from repro.faults.timing import VDD_LOW_FAULT, VDD_NOMINAL
from repro.harness.runner import (
    RunSpec,
    build_core,
    prime_caches,
    run_one,
    run_pair,
)
from repro.mem.hierarchy import MemoryHierarchy
from repro.workloads.generator import build_program
from repro.workloads.profiles import get_profile

_FAST = dict(n_instructions=1500, warmup=500)


def test_run_one_deterministic():
    spec = RunSpec("bzip2", SchemeKind.ABS, VDD_LOW_FAULT, seed=7, **_FAST)
    a = run_one(spec)
    b = run_one(spec)
    assert a.stats.as_dict() == b.stats.as_dict()
    assert a.energy.total == b.energy.total


def test_seed_changes_results():
    a = run_one(RunSpec("bzip2", seed=1, **_FAST))
    b = run_one(RunSpec("bzip2", seed=2, **_FAST))
    assert a.cycles != b.cycles


def test_fault_free_at_nominal_has_no_injector():
    core = build_core(RunSpec("astar", SchemeKind.FAULT_FREE, VDD_NOMINAL))
    assert core.injector is None


def test_fault_free_baseline_at_low_voltage_is_clean():
    result = run_one(
        RunSpec("astar", SchemeKind.FAULT_FREE, VDD_LOW_FAULT, **_FAST)
    )
    assert result.fault_rate == 0.0


def test_faulty_scheme_sees_faults():
    result = run_one(RunSpec("astar", SchemeKind.RAZOR, VDD_LOW_FAULT, **_FAST))
    assert result.stats.faults_total > 0


def test_run_pair_shares_trace():
    result, baseline = run_pair(
        "gcc", SchemeKind.ABS, VDD_LOW_FAULT, seed=3, **_FAST
    )
    assert baseline.spec.scheme is SchemeKind.FAULT_FREE
    assert baseline.fault_rate == 0.0
    assert result.spec.benchmark == baseline.spec.benchmark
    assert result.perf_overhead(baseline) == pytest.approx(
        result.cycles / baseline.cycles - 1.0
    )


def test_overhead_properties():
    result, baseline = run_pair(
        "gcc", SchemeKind.RAZOR, VDD_LOW_FAULT, seed=3, **_FAST
    )
    assert result.ed_overhead(baseline) == pytest.approx(
        result.edp / baseline.edp - 1.0
    )


def test_prime_caches_loads_bounded_regions():
    program = build_program(get_profile("mcf"), seed=1)
    hierarchy = MemoryHierarchy()
    prime_caches(program, hierarchy)
    # stats were reset by priming
    assert hierarchy.stats()["l1d_misses"] == 0
    # an L1-class address is resident afterwards
    l1_statics = [
        si for si in program.static_insts
        if si.is_mem and 0 < si.mem_region <= 4096
    ]
    assert l1_statics
    assert hierarchy.l1d.probe(l1_statics[0].mem_base)


def test_prime_caches_skips_streaming_regions():
    program = build_program(get_profile("mcf"), seed=1)
    hierarchy = MemoryHierarchy()
    prime_caches(program, hierarchy)
    streaming = [
        si for si in program.static_insts
        if si.is_mem and si.mem_region > 4 * 1024 * 1024
    ]
    if streaming:  # mcf has streaming statics
        assert not hierarchy.l2.probe(streaming[0].mem_base)


def test_spec_repr_readable():
    text = repr(RunSpec("astar", SchemeKind.CDS, 0.97))
    assert "astar" in text and "CDS" in text


def test_unknown_benchmark_raises():
    with pytest.raises(KeyError):
        run_one(RunSpec("spec_nonesuch", **_FAST))
