"""JSON export of results and experiments."""

import json

import pytest

from repro.core.schemes import SchemeKind
from repro.harness import experiments
from repro.harness.export import (
    experiment_to_dict,
    sim_result_to_dict,
    write_json,
)
from repro.harness.runner import RunSpec, run_one


@pytest.fixture(scope="module")
def result():
    return run_one(RunSpec("astar", SchemeKind.ABS, 1.04, 1200, 600))


def test_sim_result_roundtrips_through_json(result):
    payload = sim_result_to_dict(result)
    text = json.dumps(payload)
    back = json.loads(text)
    assert back["spec"]["benchmark"] == "astar"
    assert back["spec"]["scheme"] == "ABS"
    assert back["metrics"]["ipc"] == pytest.approx(result.ipc)
    assert back["stats"]["committed"] == result.stats.committed


def test_stage_faults_use_names(result):
    payload = sim_result_to_dict(result)
    for key in payload["stage_faults"]:
        assert key in ("ISSUE", "REGREAD", "EXECUTE", "MEM", "WRITEBACK",
                       "FETCH", "DECODE", "RENAME", "DISPATCH", "RETIRE")


def test_experiment_export(tmp_path):
    exp = experiments.table3()
    payload = experiment_to_dict(exp)
    assert payload["experiment"] == "table3"
    assert "ALU" in payload["data"]
    path = write_json(exp, tmp_path / "t3.json")
    loaded = json.loads(open(path).read())
    assert loaded["data"]["ALU"]["n_gates"] > 0


def test_write_json_sim_result(result, tmp_path):
    path = write_json(result, tmp_path / "run.json")
    loaded = json.loads(open(path).read())
    assert loaded["metrics"]["cycles"] == result.cycles


def test_write_json_plain_data(tmp_path):
    path = write_json({"a": [1, 2], "b": {"c": 3.5}}, tmp_path / "d.json")
    assert json.loads(open(path).read()) == {"a": [1, 2], "b": {"c": 3.5}}


def test_cli_json_flag(tmp_path, capsys):
    from repro.harness.cli import main

    out = tmp_path / "table3.json"
    assert main(["table3", "--json", str(out)]) == 0
    assert out.exists()
    assert "wrote" in capsys.readouterr().out
