"""Set-associative cache with LRU replacement."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.cache import Cache, CacheConfig


def small_cache(assoc=2, sets=4, line=64):
    return Cache(CacheConfig(assoc * sets * line, assoc, line))


class TestConfigValidation:
    def test_rejects_non_power_of_two_lines(self):
        with pytest.raises(ValueError):
            CacheConfig(1024, 2, 48)

    def test_rejects_negative_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(-1, 2, 64)

    def test_rejects_assoc_misfit(self):
        with pytest.raises(ValueError):
            CacheConfig(3 * 64, 2, 64)

    def test_set_count(self):
        config = CacheConfig(32 * 1024, 4, 64)
        assert config.n_sets == 128


class TestCacheBehaviour:
    def test_first_access_misses_then_hits(self):
        cache = small_cache()
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_different_offset_hits(self):
        cache = small_cache()
        cache.access(0x1000)
        assert cache.access(0x1000 + 63) is True

    def test_lru_eviction_order(self):
        cache = small_cache(assoc=2, sets=1)
        a, b, c = 0x0, 0x40, 0x80  # all map to the single set
        cache.access(a)
        cache.access(b)
        cache.access(a)      # a is now MRU
        cache.access(c)      # evicts b (LRU)
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_working_set_within_assoc_always_hits(self):
        cache = small_cache(assoc=4, sets=1)
        lines = [i * 0x40 for i in range(4)]
        for addr in lines:
            cache.access(addr)
        for _ in range(3):
            for addr in lines:
                assert cache.access(addr) is True

    def test_probe_has_no_side_effects(self):
        cache = small_cache()
        assert cache.probe(0x1000) is False
        assert cache.misses == 0
        cache.access(0x1000)
        assert cache.probe(0x1000) is True
        assert cache.hits == 0 and cache.misses == 1

    def test_flush(self):
        cache = small_cache()
        cache.access(0x1000)
        cache.flush()
        assert cache.access(0x1000) is False
        assert cache.misses == 1  # counters were reset by flush

    def test_miss_rate(self):
        cache = small_cache()
        assert cache.miss_rate == 0.0
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == pytest.approx(0.5)


@given(st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=200))
@settings(max_examples=40, deadline=None)
def test_occupancy_never_exceeds_capacity(addresses):
    cache = small_cache(assoc=2, sets=4)
    for addr in addresses:
        cache.access(addr)
    for ways in cache._sets:
        assert len(ways) <= cache.config.assoc
    assert cache.hits + cache.misses == len(addresses)


@given(st.lists(st.integers(min_value=0, max_value=1 << 16), max_size=100),
       st.integers(min_value=0, max_value=1 << 16))
@settings(max_examples=40, deadline=None)
def test_immediate_reaccess_always_hits(addresses, final):
    cache = small_cache()
    for addr in addresses:
        cache.access(addr)
    cache.access(final)
    assert cache.access(final) is True
