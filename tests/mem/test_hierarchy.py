"""Two-level hierarchy latencies and accounting."""

import pytest

from repro.mem.hierarchy import HierarchyConfig, MemoryHierarchy


@pytest.fixture
def hierarchy():
    return MemoryHierarchy()


def test_paper_latencies_are_default():
    config = HierarchyConfig()
    assert config.l1_latency == 1
    assert config.l2_latency == 25
    assert config.mem_latency == 240


def test_cold_access_goes_to_memory(hierarchy):
    result = hierarchy.access_data(0x1234)
    assert result.level == "MEM"
    assert result.latency == 1 + 25 + 240


def test_second_access_hits_l1(hierarchy):
    hierarchy.access_data(0x1234)
    result = hierarchy.access_data(0x1234)
    assert result.level == "L1"
    assert result.latency == 1


def test_l1_eviction_falls_to_l2(hierarchy):
    # fill one L1 set (4-way, 128 sets, 64B lines): 5 lines same set
    set_stride = 128 * 64
    addrs = [i * set_stride for i in range(5)]
    for addr in addrs:
        hierarchy.access_data(addr)
    result = hierarchy.access_data(addrs[0])  # evicted from L1, still in L2
    assert result.level == "L2"
    assert result.latency == 26


def test_inst_and_data_sides_are_split(hierarchy):
    hierarchy.access_data(0x4000)
    result = hierarchy.access_inst(0x4000)
    assert result.level != "L1"  # data access did not warm L1I


def test_inst_side_hits_shared_l2(hierarchy):
    hierarchy.access_data(0x4000)
    assert hierarchy.access_inst(0x4000).level == "L2"


def test_stats_accounting(hierarchy):
    hierarchy.access_data(0)
    hierarchy.access_data(0)
    hierarchy.access_inst(1 << 20)
    stats = hierarchy.stats()
    assert stats["l1d_hits"] == 1
    assert stats["l1d_misses"] == 1
    assert stats["l1i_misses"] == 1
    assert stats["mem_accesses"] == 2


def test_reset_stats_keeps_contents(hierarchy):
    hierarchy.access_data(0x999)
    hierarchy.reset_stats()
    assert hierarchy.stats()["l1d_misses"] == 0
    assert hierarchy.access_data(0x999).level == "L1"
