"""Grid planning, seed-stream derivation, manifest round-trip."""

import pytest

from repro.campaign.plan import (
    METRICS,
    CampaignSpec,
    GridPoint,
    derive_seed,
    extract_metrics,
)
from repro.core.schemes import SchemeKind
from repro.harness.runner import run_one


def _spec(**kw):
    defaults = dict(
        name="t", benchmarks=["astar", "bzip2"], schemes=["EP", "ABS"],
        vdds=[0.97, 1.04], n_instructions=500, warmup=250,
    )
    defaults.update(kw)
    return CampaignSpec(**defaults)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 0) == derive_seed(1, "a", 0)

    def test_distinct_across_parts_and_master(self):
        seeds = {
            derive_seed(1, "a", 0), derive_seed(1, "a", 1),
            derive_seed(1, "b", 0), derive_seed(2, "a", 0),
        }
        assert len(seeds) == 4

    def test_positive_31_bit(self):
        for i in range(50):
            seed = derive_seed(7, "point", i)
            assert 1 <= seed < 2**31


class TestGrid:
    def test_points_order_and_count(self):
        points = _spec().points()
        assert len(points) == 2 * 2 * 2
        assert points[0].id == "astar/EP/0.97"
        assert points[-1].id == "bzip2/ABS/1.04"
        # deterministic: two expansions agree exactly
        assert [p.id for p in points] == [p.id for p in _spec().points()]

    def test_scheme_names_accepted(self):
        point = GridPoint("astar", "cds", 0.97)
        assert point.scheme is SchemeKind.CDS

    def test_pair_specs_fault_mode_share_warmup_vary_measurement(self):
        spec = _spec()  # draw_mode="fault" is the default
        point = spec.points()[0]
        run, baseline = spec.pair_specs(point, 3)
        # one shared warmup realization per point: every draw (and the
        # baseline) carries the same whole-run seed -> one snapshot
        assert run.seed == baseline.seed == spec.warmup_seed_for(point)
        assert run.measurement_seed == spec.seed_for(point, 3)
        other, _ = spec.pair_specs(point, 4)
        assert other.seed == run.seed
        assert other.measurement_seed != run.measurement_seed
        assert run.warmup_key() == other.warmup_key()
        # the baseline's measured window is deterministic: all indices
        # collapse to one spec (one simulation per point)
        _, baseline4 = spec.pair_specs(point, 4)
        assert baseline4.key() == baseline.key()
        assert baseline.measurement_seed is None
        assert baseline.scheme is SchemeKind.FAULT_FREE
        assert run.scheme is SchemeKind.EP
        assert run.vdd == baseline.vdd == 0.97

    def test_pair_specs_program_mode_share_seed(self):
        spec = _spec(draw_mode="program")
        point = spec.points()[0]
        run, baseline = spec.pair_specs(point, 3)
        assert run.seed == baseline.seed == spec.seed_for(point, 3)
        assert run.measurement_seed is None
        assert baseline.scheme is SchemeKind.FAULT_FREE

    def test_seed_streams_differ_between_points(self):
        spec = _spec()
        a, b = spec.points()[0], spec.points()[1]
        stream_a = [spec.seed_for(a, i) for i in range(4)]
        stream_b = [spec.seed_for(b, i) for i in range(4)]
        assert set(stream_a).isdisjoint(stream_b)

    def test_explicit_seeds_override_stream_and_stopping(self):
        spec = _spec(seeds=[11, 22])
        point = spec.points()[0]
        assert spec.seed_for(point, 0) == 11
        assert spec.seed_for(point, 1) == 22
        assert spec.min_seeds == spec.max_seeds == spec.batch_size == 2


class TestManifestRoundTrip:
    def test_round_trip(self):
        spec = _spec(targets={"perf_overhead": 0.01}, master_seed=9)
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()
        assert [p.id for p in clone.points()] == [p.id for p in spec.points()]
        point = spec.points()[2]
        assert clone.seed_for(point, 5) == spec.seed_for(point, 5)

    def test_round_trip_explicit_seeds(self):
        spec = _spec(seeds=[4, 5, 6])
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert clone.seeds == [4, 5, 6]
        assert clone.max_seeds == 3

    def test_json_safe(self):
        import json

        json.dumps(_spec().to_dict())


class TestValidate:
    def test_unknown_benchmark(self):
        with pytest.raises(ValueError, match="nosuch"):
            _spec(benchmarks=["nosuch"]).validate()

    def test_unknown_target_metric(self):
        with pytest.raises(ValueError, match="nosuch_metric"):
            _spec(targets={"nosuch_metric": 0.1}).validate()

    def test_unknown_scheme_fails_at_construction(self):
        with pytest.raises(ValueError):
            _spec(schemes=["warp-drive"])

    def test_valid_spec_passes(self):
        assert _spec().validate() is not None


def test_extract_metrics_from_real_pair():
    spec = _spec()
    point = spec.points()[1]  # astar/ABS
    run, baseline = spec.pair_specs(point, 0)
    values, counts = extract_metrics(run_one(run), run_one(baseline))
    assert set(values) == set(METRICS)
    assert counts["committed"] >= spec.n_instructions
    assert counts["faults"] >= 0
    assert values["fault_rate"] == pytest.approx(
        counts["faults"] / counts["committed"]
    )
