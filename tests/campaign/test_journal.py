"""Journal append/replay, torn-tail tolerance, manifest guards."""

import json
import os

import pytest

from repro.campaign.journal import (
    Journal,
    read_manifest,
    write_manifest,
)
from repro.campaign.plan import CampaignSpec


def _spec(name="t"):
    return CampaignSpec(
        name=name, benchmarks=["astar"], schemes=["EP"],
        n_instructions=500, warmup=250,
    )


def _run_event(point, index):
    return {
        "event": "run", "point": point, "index": index, "seed": 7 + index,
        "metrics": {"perf_overhead": 0.1, "ed_overhead": 0.2, "ipc": 1.0,
                    "fault_rate": 0.01, "replay_rate": 0.005},
        "counts": {"faults": 5, "replays": 2, "committed": 500},
    }


class TestManifest:
    def test_round_trip(self, tmp_path):
        write_manifest(tmp_path, _spec())
        manifest = read_manifest(tmp_path)
        assert manifest["format"] == 1
        assert manifest["spec"]["name"] == "t"
        assert CampaignSpec.from_dict(manifest["spec"]).benchmarks == ["astar"]

    def test_idempotent_for_same_spec(self, tmp_path):
        write_manifest(tmp_path, _spec())
        write_manifest(tmp_path, _spec())  # no error

    def test_refuses_different_spec(self, tmp_path):
        write_manifest(tmp_path, _spec())
        with pytest.raises(ValueError, match="different campaign"):
            write_manifest(tmp_path, _spec(name="other"))

    def test_records_model_version(self, tmp_path):
        from repro.harness.parallel import model_version

        assert write_manifest(tmp_path, _spec())["model_version"] == (
            model_version()
        )


class TestJournal:
    def test_replay_empty(self, tmp_path):
        state = Journal(tmp_path).replay()
        assert state.runs == {} and not state.done and state.n_events == 0

    def test_append_replay_round_trip(self, tmp_path):
        with Journal(tmp_path) as journal:
            journal.append(_run_event("p1", 0))
            journal.append(_run_event("p1", 1))
            journal.append({"event": "point", "point": "p1", "n": 2,
                            "stopped": "ci", "summary": {}})
            journal.append(_run_event("p2", 0))
        state = Journal(tmp_path).replay()
        assert [r["index"] for r in state.runs["p1"]] == [0, 1]
        assert len(state.runs["p2"]) == 1
        assert state.completed["p1"]["stopped"] == "ci"
        assert "p2" not in state.completed
        assert not state.done
        assert state.total_runs == 3

    def test_done_marker(self, tmp_path):
        with Journal(tmp_path) as journal:
            journal.append({"event": "done"})
        assert Journal(tmp_path).replay().done

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        with Journal(tmp_path) as journal:
            journal.append(_run_event("p1", 0))
        # simulate a kill mid-append: half a JSON object, no newline
        with open(Journal(tmp_path).path, "a") as fh:
            fh.write('{"event": "run", "point": "p1", "ind')
        state = Journal(tmp_path).replay()
        assert len(state.runs["p1"]) == 1
        assert state.n_torn == 1

    def test_events_are_one_json_object_per_line(self, tmp_path):
        with Journal(tmp_path) as journal:
            journal.append(_run_event("p1", 0))
            journal.append({"event": "done"})
        lines = open(Journal(tmp_path).path).read().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)

    def test_append_creates_directory(self, tmp_path):
        target = os.path.join(tmp_path, "nested", "campaign")
        with Journal(target) as journal:
            journal.append({"event": "done"})
        assert Journal(target).replay().done


class TestRepair:
    def test_truncates_torn_trailing_record(self, tmp_path, capsys):
        with Journal(tmp_path) as journal:
            journal.append(_run_event("p1", 0))
        with open(Journal(tmp_path).path, "a") as fh:
            fh.write('{"event": "run", "point": "p1", "ind')
        journal = Journal(tmp_path)
        dropped = journal.repair()
        assert dropped > 0
        assert "truncated torn trailing record" in capsys.readouterr().err
        state = journal.replay()
        assert state.n_torn == 0
        assert len(state.runs["p1"]) == 1

    def test_append_after_repair_yields_valid_journal(self, tmp_path):
        """Regression: resume after a torn tail must not concatenate the
        next event onto the partial line."""
        with Journal(tmp_path) as journal:
            journal.append(_run_event("p1", 0))
        with open(Journal(tmp_path).path, "a") as fh:
            fh.write('{"event": "run", "point": "p1", "ind')
        journal = Journal(tmp_path)
        journal.repair()
        with journal:
            journal.append(_run_event("p1", 1))
        lines = open(journal.path).read().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)
        state = Journal(tmp_path).replay()
        assert [r["index"] for r in state.runs["p1"]] == [0, 1]

    def test_complete_record_missing_newline_is_terminated(self, tmp_path):
        """A kill between write and the newline flush loses no data."""
        with Journal(tmp_path) as journal:
            journal.append(_run_event("p1", 0))
        with open(Journal(tmp_path).path, "a") as fh:
            fh.write(json.dumps(_run_event("p1", 1)))  # no trailing \n
        journal = Journal(tmp_path)
        assert journal.repair() == 0
        state = journal.replay()
        assert [r["index"] for r in state.runs["p1"]] == [0, 1]
        assert open(journal.path).read().endswith("\n")

    def test_noop_on_clean_journal(self, tmp_path):
        with Journal(tmp_path) as journal:
            journal.append(_run_event("p1", 0))
        before = open(Journal(tmp_path).path, "rb").read()
        assert Journal(tmp_path).repair() == 0
        assert open(Journal(tmp_path).path, "rb").read() == before

    def test_noop_on_missing_journal(self, tmp_path):
        assert Journal(tmp_path).repair() == 0

    def test_resume_through_torn_tail(self, tmp_path):
        """End to end: a campaign killed mid-append resumes cleanly."""
        from repro.harness.cli import main

        args = ["--dir", str(tmp_path), "--benchmarks", "astar",
                "--schemes", "EP", "--instructions", "500", "--warmup",
                "250", "--seeds-min", "2", "--seeds-max", "2", "--batch",
                "2", "--no-cache"]
        assert main(["campaign", "run"] + args) == 0
        journal_path = Journal(tmp_path).path
        clean = open(journal_path).read()
        # drop the completion events and tear the last run record
        lines = [
            line for line in clean.splitlines()
            if '"event": "run"' in line
        ]
        with open(journal_path, "w") as fh:
            fh.write("\n".join(lines[:-1]) + "\n")
            fh.write(lines[-1][: len(lines[-1]) // 2])
        assert main(
            ["campaign", "resume", "--dir", str(tmp_path), "--no-cache"]
        ) == 0
        state = Journal(tmp_path).replay()
        assert state.done
        assert state.n_torn == 0
