"""Journal append/replay, torn-tail tolerance, manifest guards."""

import json
import os

import pytest

from repro.campaign.journal import (
    Journal,
    read_manifest,
    write_manifest,
)
from repro.campaign.plan import CampaignSpec


def _spec(name="t"):
    return CampaignSpec(
        name=name, benchmarks=["astar"], schemes=["EP"],
        n_instructions=500, warmup=250,
    )


def _run_event(point, index):
    return {
        "event": "run", "point": point, "index": index, "seed": 7 + index,
        "metrics": {"perf_overhead": 0.1, "ed_overhead": 0.2, "ipc": 1.0,
                    "fault_rate": 0.01, "replay_rate": 0.005},
        "counts": {"faults": 5, "replays": 2, "committed": 500},
    }


class TestManifest:
    def test_round_trip(self, tmp_path):
        write_manifest(tmp_path, _spec())
        manifest = read_manifest(tmp_path)
        assert manifest["format"] == 1
        assert manifest["spec"]["name"] == "t"
        assert CampaignSpec.from_dict(manifest["spec"]).benchmarks == ["astar"]

    def test_idempotent_for_same_spec(self, tmp_path):
        write_manifest(tmp_path, _spec())
        write_manifest(tmp_path, _spec())  # no error

    def test_refuses_different_spec(self, tmp_path):
        write_manifest(tmp_path, _spec())
        with pytest.raises(ValueError, match="different campaign"):
            write_manifest(tmp_path, _spec(name="other"))

    def test_records_model_version(self, tmp_path):
        from repro.harness.parallel import model_version

        assert write_manifest(tmp_path, _spec())["model_version"] == (
            model_version()
        )


class TestJournal:
    def test_replay_empty(self, tmp_path):
        state = Journal(tmp_path).replay()
        assert state.runs == {} and not state.done and state.n_events == 0

    def test_append_replay_round_trip(self, tmp_path):
        with Journal(tmp_path) as journal:
            journal.append(_run_event("p1", 0))
            journal.append(_run_event("p1", 1))
            journal.append({"event": "point", "point": "p1", "n": 2,
                            "stopped": "ci", "summary": {}})
            journal.append(_run_event("p2", 0))
        state = Journal(tmp_path).replay()
        assert [r["index"] for r in state.runs["p1"]] == [0, 1]
        assert len(state.runs["p2"]) == 1
        assert state.completed["p1"]["stopped"] == "ci"
        assert "p2" not in state.completed
        assert not state.done
        assert state.total_runs == 3

    def test_done_marker(self, tmp_path):
        with Journal(tmp_path) as journal:
            journal.append({"event": "done"})
        assert Journal(tmp_path).replay().done

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        with Journal(tmp_path) as journal:
            journal.append(_run_event("p1", 0))
        # simulate a kill mid-append: half a JSON object, no newline
        with open(Journal(tmp_path).path, "a") as fh:
            fh.write('{"event": "run", "point": "p1", "ind')
        state = Journal(tmp_path).replay()
        assert len(state.runs["p1"]) == 1
        assert state.n_torn == 1

    def test_events_are_one_json_object_per_line(self, tmp_path):
        with Journal(tmp_path) as journal:
            journal.append(_run_event("p1", 0))
            journal.append({"event": "done"})
        lines = open(Journal(tmp_path).path).read().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)

    def test_append_creates_directory(self, tmp_path):
        target = os.path.join(tmp_path, "nested", "campaign")
        with Journal(target) as journal:
            journal.append({"event": "done"})
        assert Journal(target).replay().done
