"""The `campaign` CLI subcommand: plan/run/resume/report verbs."""

import json
import os

from repro.harness.cli import main

_FAST = [
    "--instructions", "500", "--warmup", "250",
    "--seeds-min", "2", "--seeds-max", "2", "--batch", "2",
]


def _run_args(directory, benchmarks=("astar",), schemes=("EP", "ABS")):
    return (
        ["campaign", "run", "--dir", str(directory)]
        + ["--benchmarks"] + list(benchmarks)
        + ["--schemes"] + list(schemes)
        + ["--vdds", "0.97", "--no-cache"] + _FAST
    )


def test_plan_writes_manifest(tmp_path, capsys):
    code = main(
        ["campaign", "plan", "--dir", str(tmp_path), "--benchmarks",
         "astar", "--schemes", "EP"] + _FAST
    )
    assert code == 0
    assert "planned 1 grid points" in capsys.readouterr().out
    manifest = json.load(open(tmp_path / "manifest.json"))
    assert manifest["spec"]["benchmarks"] == ["astar"]
    assert manifest["spec"]["max_seeds"] == 2


def test_run_then_report(tmp_path, capsys):
    assert main(_run_args(tmp_path)) == 0
    out = capsys.readouterr().out
    assert "2/2 points" in out
    report = json.load(open(tmp_path / "report.json"))
    assert report["complete"]
    assert report["runs_total"] == 4
    for point in report["points"]:
        for entry in point["metrics"].values():
            assert {"mean", "halfwidth", "n", "kind"} == set(entry)
    assert os.path.exists(tmp_path / "report.md")

    # report verb rebuilds identically
    before = (tmp_path / "report.json").read_bytes()
    assert main(["campaign", "report", "--dir", str(tmp_path)]) == 0
    assert (tmp_path / "report.json").read_bytes() == before


def test_run_of_planned_campaign_uses_manifest(tmp_path):
    assert main(
        ["campaign", "plan", "--dir", str(tmp_path), "--benchmarks",
         "astar", "--schemes", "EP"] + _FAST
    ) == 0
    assert main(
        ["campaign", "run", "--dir", str(tmp_path), "--no-cache"]
    ) == 0
    report = json.load(open(tmp_path / "report.json"))
    assert report["points_total"] == 1 and report["complete"]


def test_resume_verb_on_fresh_directory_fails_cleanly(tmp_path, capsys):
    code = main(["campaign", "resume", "--dir", str(tmp_path / "nope")])
    assert code == 2


def test_report_without_manifest_fails_cleanly(tmp_path, capsys):
    code = main(["campaign", "report", "--dir", str(tmp_path / "nope")])
    assert code == 2
    assert "no campaign manifest" in capsys.readouterr().err


def test_unknown_benchmark_rejected_eagerly(tmp_path, capsys):
    code = main(_run_args(tmp_path, benchmarks=("nosuch",)))
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown benchmark(s): nosuch" in err
    assert "astar" in err  # the known list is printed
    assert not os.path.exists(tmp_path / "manifest.json")


def test_unknown_scheme_rejected_eagerly(tmp_path, capsys):
    code = main(_run_args(tmp_path, schemes=("warp",)))
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown scheme(s): warp" in err
    assert "ABS" in err


def test_half_width_targets_parsed(tmp_path):
    assert main(
        ["campaign", "plan", "--dir", str(tmp_path), "--benchmarks",
         "astar", "--schemes", "EP", "--half-width", "perf_overhead=0.3",
         "fault_rate=0.05"] + _FAST
    ) == 0
    manifest = json.load(open(tmp_path / "manifest.json"))
    assert manifest["spec"]["targets"] == {
        "perf_overhead": 0.3, "fault_rate": 0.05,
    }
