"""`campaign status`: per-point progress from a replayed journal."""

import json

from repro.campaign.journal import Journal, write_manifest
from repro.campaign.plan import CampaignSpec
from repro.campaign.status import build_status, render_status
from repro.harness.cli import main


def _spec():
    return CampaignSpec(
        name="st", benchmarks=["astar"], schemes=["EP", "ABS"],
        n_instructions=500, warmup=250, min_seeds=2, max_seeds=4,
        batch_size=2,
    )


def _run(point, index):
    return {
        "event": "run", "point": point, "index": index, "seed": index,
        "metrics": {"perf_overhead": 0.1, "ed_overhead": 0.2, "ipc": 1.0,
                    "fault_rate": 0.01, "replay_rate": 0.0},
        "counts": {"faults": 5, "replays": 0, "committed": 500},
    }


def _populate(directory, spec):
    """First point completed (2 draws), second point mid-sampling."""
    write_manifest(directory, spec)
    first, second = (p.id for p in spec.points())
    with Journal(directory) as journal:
        journal.append(_run(first, 0))
        journal.append(_run(first, 1))
        journal.append({"event": "point", "point": first, "n": 2,
                        "stopped": "ci", "summary": {}})
        journal.append(_run(second, 0))
    return first, second


class TestBuildStatus:
    def test_mixed_progress(self, tmp_path):
        spec = _spec()
        first, second = _populate(tmp_path, spec)
        status = build_status(tmp_path)
        assert status["campaign"] == "st"
        assert not status["complete"]
        assert status["points_done"] == 1
        assert status["runs_total"] == 3
        by_id = {p["point"]: p for p in status["points"]}
        assert by_id[first]["state"] == "ci"
        assert by_id[first]["stopped"] == "ci"
        assert by_id[first]["n"] == 2
        assert by_id[second]["state"] == "sampling"
        assert by_id[second]["stopped"] is None
        assert by_id[second]["n"] == 1

    def test_pending_point(self, tmp_path):
        spec = _spec()
        write_manifest(tmp_path, spec)
        status = build_status(tmp_path)
        for point in status["points"]:
            assert point["state"] == "pending"
            assert point["n"] == 0

    def test_single_draw_halfwidth_is_none(self, tmp_path):
        """n=1 gives an infinite normal CI; shown as null, not inf."""
        spec = _spec()
        write_manifest(tmp_path, spec)
        with Journal(tmp_path) as journal:
            journal.append(_run(spec.points()[0].id, 0))
        status = build_status(tmp_path)
        entry = status["points"][0]["targets"]["perf_overhead"]
        assert entry["halfwidth"] is None
        assert not entry["met"]

    def test_targets_carry_goal_and_met_flag(self, tmp_path):
        spec = _spec()
        _populate(tmp_path, spec)
        status = build_status(tmp_path)
        done = status["points"][0]["targets"]
        # two identical draws -> zero-width perf CI -> target met
        assert done["perf_overhead"]["met"]
        assert done["perf_overhead"]["target"] == spec.targets[
            "perf_overhead"
        ]


class TestRenderAndCli:
    def test_render_mentions_every_point(self, tmp_path):
        spec = _spec()
        _populate(tmp_path, spec)
        text = render_status(build_status(tmp_path))
        for point in spec.points():
            assert point.id in text
        assert "1/2 points done" in text

    def test_cli_status_text(self, tmp_path, capsys):
        _populate(tmp_path, _spec())
        assert main(["campaign", "status", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1/2 points done" in out
        assert "sampling" in out

    def test_cli_status_json(self, tmp_path, capsys):
        _populate(tmp_path, _spec())
        assert main(
            ["campaign", "status", "--dir", str(tmp_path), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["points_total"] == 2

    def test_cli_status_without_manifest(self, tmp_path, capsys):
        code = main(["campaign", "status", "--dir", str(tmp_path / "no")])
        assert code == 2
        assert "no campaign manifest" in capsys.readouterr().err
