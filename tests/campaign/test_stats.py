"""Interval math and the point accumulator."""

import math

import pytest

from repro.campaign.stats import (
    PointAccumulator,
    mean_std,
    normal_halfwidth,
    wilson_interval,
)


class TestMeanStd:
    def test_basic(self):
        mean, std = mean_std([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(1.0)

    def test_single_value(self):
        assert mean_std([5.0]) == (5.0, 0.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_std([])


class TestNormalHalfwidth:
    def test_shrinks_with_n(self):
        assert normal_halfwidth(1.0, 100) < normal_halfwidth(1.0, 10)

    def test_n1_is_infinite(self):
        assert math.isinf(normal_halfwidth(1.0, 1))

    def test_value(self):
        assert normal_halfwidth(2.0, 4, z=1.96) == pytest.approx(1.96)


class TestWilson:
    def test_matches_known_value(self):
        # 10 successes in 50 trials, 95%: center (p + z^2/2n)/(1 + z^2/n)
        center, half = wilson_interval(10, 50, z=1.96)
        assert center == pytest.approx(0.2214, abs=1e-3)
        assert half == pytest.approx(0.1090, abs=1e-3)

    def test_zero_successes_still_informative(self):
        center, half = wilson_interval(0, 1000)
        assert 0.0 < center < 0.01
        assert half < 0.01

    def test_no_trials_is_infinite(self):
        assert math.isinf(wilson_interval(0, 0)[1])

    def test_shrinks_with_trials(self):
        assert wilson_interval(10, 1000)[1] < wilson_interval(1, 100)[1]


def _draw(perf=0.1, faults=5, replays=3, committed=500, ipc=1.0, ed=0.2):
    values = {
        "perf_overhead": perf, "ed_overhead": ed, "ipc": ipc,
        "fault_rate": faults / committed,
        "replay_rate": replays / committed,
    }
    counts = {"faults": faults, "replays": replays, "committed": committed}
    return values, counts


class TestPointAccumulator:
    def test_counts_pool_and_values_accumulate(self):
        acc = PointAccumulator()
        acc.push(*_draw(perf=0.1, faults=4))
        acc.push(*_draw(perf=0.2, faults=6))
        assert acc.n == 2
        assert acc.committed == 1000
        assert acc.mean("perf_overhead") == pytest.approx(0.15)
        assert acc.mean("fault_rate") == pytest.approx(10 / 1000)
        assert acc.values["fault_rate"] == [4 / 500, 6 / 500]

    def test_not_converged_before_any_draw(self):
        assert not PointAccumulator().converged({"perf_overhead": 1e9})

    def test_converged_ignores_unlisted_metrics(self):
        acc = PointAccumulator()
        acc.push(*_draw(perf=0.1, ipc=1.0))
        acc.push(*_draw(perf=0.1, ipc=1.5))
        # zero variance on perf; wide-open ipc only matters if targeted
        assert acc.converged({"perf_overhead": 0.01})
        assert not acc.converged({"perf_overhead": 0.01, "ipc": 0.01})

    def test_rate_metric_uses_wilson_on_pooled_counts(self):
        acc = PointAccumulator()
        for _ in range(4):
            acc.push(*_draw(faults=5, committed=500))
        expected = wilson_interval(20, 2000)[1]
        assert acc.halfwidth("fault_rate") == pytest.approx(expected)

    def test_summary_carries_mean_halfwidth_n_for_every_metric(self):
        acc = PointAccumulator()
        acc.push(*_draw())
        acc.push(*_draw(perf=0.12))
        summary = acc.summary()
        for metric, entry in summary.items():
            assert set(entry) == {"mean", "halfwidth", "n", "kind"}
            assert entry["n"] == 2
            assert entry["halfwidth"] is None or entry["halfwidth"] >= 0
        assert summary["perf_overhead"]["kind"] == "normal"
        assert summary["fault_rate"]["kind"] == "wilson"

    def test_summary_single_draw_has_null_normal_halfwidth(self):
        acc = PointAccumulator()
        acc.push(*_draw())
        summary = acc.summary()
        assert summary["perf_overhead"]["halfwidth"] is None
        # Wilson is defined from one draw's pooled counts already
        assert summary["fault_rate"]["halfwidth"] is not None
