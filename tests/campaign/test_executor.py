"""Executor: resumable state, confidence-driven stopping, bounded retry.

Two acceptance properties are pinned here:

* **Resumability** — a campaign killed after N of M points and resumed
  produces a byte-identical ``report.json`` to an uninterrupted run,
  and the resume executes only the remaining points (asserted via
  journal and batch-call counts).
* **Confidence-driven stopping** — at the same target half-width the
  sequential executor issues measurably fewer runs than a fixed-N
  design, and every reported metric carries (mean, CI, n).
"""

import json
import os

import pytest

from repro.campaign.executor import (
    CampaignError,
    make_run_fn,
    run_campaign,
)
from repro.campaign.journal import Journal
from repro.campaign.plan import CampaignSpec
from repro.harness.parallel import run_many

_FAST = dict(n_instructions=500, warmup=250)


def _spec(**kw):
    defaults = dict(
        name="exec-test", benchmarks=["astar"],
        schemes=["EP", "ABS", "CDS"], vdds=[0.97],
        seeds=[1, 2],  # fixed-N: 2 draws per point, deterministic
        **_FAST,
    )
    defaults.update(kw)
    return CampaignSpec(**defaults)


class _CountingRunFn:
    """run_many pass-through that counts batch calls and specs."""

    def __init__(self, explode_on_call=None):
        self.calls = 0
        self.specs_run = 0
        self.explode_on_call = explode_on_call

    def __call__(self, specs):
        self.calls += 1
        if self.explode_on_call is not None and (
            self.calls >= self.explode_on_call
        ):
            raise KeyboardInterrupt  # simulated kill -9 / ^C
        self.specs_run += len(specs)
        return run_many(specs, jobs=1)


class TestResumability:
    def test_interrupted_resume_is_byte_identical(self, tmp_path):
        straight_dir = tmp_path / "straight"
        resumed_dir = tmp_path / "resumed"

        # uninterrupted reference run: 3 points x 2 seeds
        straight = _CountingRunFn()
        run_campaign(straight_dir, spec=_spec(), run_fn=straight)
        assert straight.calls == 3  # one batch per point

        # same campaign, killed after the first point completes
        interrupted = _CountingRunFn(explode_on_call=2)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(resumed_dir, spec=_spec(), run_fn=interrupted)
        state = Journal(resumed_dir).replay()
        assert len(state.completed) == 1
        assert state.total_runs == 2  # only point 1's draws journaled

        # resume executes ONLY the two remaining points
        resume = _CountingRunFn()
        run_campaign(resumed_dir, resume=True, run_fn=resume)
        assert resume.calls == 2
        assert resume.specs_run == 2 * 2 * 2  # 2 points x 2 seeds x pair

        # journal totals now match the uninterrupted run exactly
        state = Journal(resumed_dir).replay()
        assert state.total_runs == 6
        assert len(state.completed) == 3
        assert state.done

        # final reports are byte-identical
        straight_bytes = (straight_dir / "report.json").read_bytes()
        resumed_bytes = (resumed_dir / "report.json").read_bytes()
        assert straight_bytes == resumed_bytes

    def test_completed_points_not_rerun_on_resume(self, tmp_path):
        run_campaign(tmp_path, spec=_spec(), run_fn=_CountingRunFn())
        # resuming a finished campaign executes nothing
        untouched = _CountingRunFn()
        report = run_campaign(tmp_path, resume=True, run_fn=untouched)
        assert untouched.calls == 0
        assert report["complete"]

    def test_fresh_run_refuses_existing_journal(self, tmp_path):
        interrupted = _CountingRunFn(explode_on_call=2)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(tmp_path, spec=_spec(), run_fn=interrupted)
        with pytest.raises(CampaignError, match="resume"):
            run_campaign(tmp_path, spec=_spec(), run_fn=_CountingRunFn())

    def test_partial_point_continues_from_recorded_draws(self, tmp_path):
        # batch_size=1 so a point is interruptible mid-point
        spec = _spec(seeds=None, min_seeds=2, max_seeds=2, batch_size=1,
                     schemes=["EP"], targets={})
        interrupted = _CountingRunFn(explode_on_call=2)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(tmp_path, spec=spec, run_fn=interrupted)
        assert Journal(tmp_path).replay().total_runs == 1
        resume = _CountingRunFn()
        run_campaign(tmp_path, resume=True, run_fn=resume)
        # exactly one more draw (one pair), not a repeat of the first
        assert resume.specs_run == 2
        state = Journal(tmp_path).replay()
        records = state.runs["astar/EP/0.97"]
        assert [r["index"] for r in records] == [0, 1]
        assert records[0]["seed"] != records[1]["seed"]


# ----------------------------------------------------------------------
# confidence-driven stopping (fake simulator: controlled variance)
# ----------------------------------------------------------------------
class _FakeStats:
    def __init__(self, faults, replays, committed):
        self.faults_total = faults
        self.replays = replays
        self.committed = committed


class _FakeResult:
    def __init__(self, cycles, edp, ipc, faults, replays, committed):
        self.cycles = cycles
        self.edp = edp
        self.ipc = ipc
        self.stats = _FakeStats(faults, replays, committed)
        self.fault_rate = faults / committed


def _noise(seed):
    """Deterministic pseudo-noise in [0, 1) from a seed."""
    return ((seed * 2654435761) % 2**32) / 2**32


class _FakeSim:
    """Batch runner with small seed-to-seed variance; counts draws."""

    def __init__(self):
        self.pairs_run = 0

    def __call__(self, specs):
        results = []
        for spec in specs:
            from repro.core.schemes import SchemeKind

            base_cycles = 1000.0
            if spec.scheme is SchemeKind.FAULT_FREE:
                results.append(_FakeResult(
                    base_cycles, 1.0, 1.0, 0, 0, spec.n_instructions,
                ))
            else:
                self.pairs_run += 1
                # draw-to-draw variance rides the measurement seed in
                # fault draw mode and the whole-run seed in program mode
                draw_seed = (
                    spec.measurement_seed
                    if spec.measurement_seed is not None else spec.seed
                )
                jitter = 0.01 * (_noise(draw_seed) - 0.5)  # sd ~ 0.003
                cycles = base_cycles * (1.10 + jitter)
                results.append(_FakeResult(
                    cycles, 1.2, 0.9,
                    faults=10, replays=4,
                    committed=spec.n_instructions,
                ))
        return results


class TestConfidenceStopping:
    def _measure(self, tmp_path, tag, **spec_kw):
        sim = _FakeSim()
        spec = CampaignSpec(
            name=tag, benchmarks=["astar"], schemes=["ABS"], vdds=[0.97],
            n_instructions=2000, warmup=0, **spec_kw,
        )
        report = run_campaign(tmp_path / tag, spec=spec, run_fn=sim)
        return sim, report

    def test_sequential_beats_fixed_n_at_same_halfwidth(self, tmp_path):
        target = {"perf_overhead": 0.01}
        fixed_n = 16
        sequential, seq_report = self._measure(
            tmp_path, "seq", min_seeds=3, max_seeds=fixed_n, batch_size=2,
            targets=target,
        )
        fixed, fix_report = self._measure(
            tmp_path, "fixed", min_seeds=fixed_n, max_seeds=fixed_n,
            batch_size=fixed_n, targets=target,
        )
        assert fixed.pairs_run == fixed_n
        # the sequential design stopped well short of the fixed budget...
        assert sequential.pairs_run < fixed_n
        assert seq_report["points"][0]["stopped"] == "ci"
        # ...yet met the same target half-width
        seq_metric = seq_report["points"][0]["metrics"]["perf_overhead"]
        assert seq_metric["halfwidth"] <= target["perf_overhead"]

    def test_max_seeds_caps_hopeless_points(self, tmp_path):
        sim, report = self._measure(
            tmp_path, "capped", min_seeds=2, max_seeds=4, batch_size=2,
            targets={"perf_overhead": 1e-9},  # unreachable
        )
        assert sim.pairs_run == 4
        assert report["points"][0]["stopped"] == "max_seeds"

    def test_every_reported_metric_carries_mean_ci_n(self, tmp_path):
        _, report = self._measure(
            tmp_path, "triples", min_seeds=3, max_seeds=6, batch_size=3,
            targets={"perf_overhead": 0.01},
        )
        json_bytes = json.dumps(report)  # JSON-serializable end to end
        assert json_bytes
        for point in report["points"]:
            for metric, entry in point["metrics"].items():
                assert entry["n"] >= 3
                assert isinstance(entry["mean"], float)
                assert entry["halfwidth"] is not None


# ----------------------------------------------------------------------
# bounded retry
# ----------------------------------------------------------------------
class _FlakyRunFn:
    """Fails the first ``failures`` calls, then delegates to run_many."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def __call__(self, specs):
        self.calls += 1
        if self.calls <= self.failures:
            raise OSError("worker crashed")
        return run_many(specs, jobs=1)


# ----------------------------------------------------------------------
# verification failure path: one failed point cannot take down a campaign
# ----------------------------------------------------------------------
class _FailingRunFn:
    """Delegates to run_many, but fails one benchmark's scheme runs."""

    def __init__(self, failing_benchmark):
        self.failing_benchmark = failing_benchmark

    def __call__(self, specs):
        from repro.core.schemes import SchemeKind
        from repro.verify.bundle import RunFailure

        results = run_many(specs, jobs=1)
        for i, spec in enumerate(specs):
            if (
                spec.benchmark == self.failing_benchmark
                and spec.scheme is not SchemeKind.FAULT_FREE
            ):
                results[i] = RunFailure(
                    spec, "divergence", {"field": "value"},
                    bundle_path="/tmp/fake-bundle.json",
                )
        return results


class TestVerificationFailurePath:
    def _run(self, tmp_path):
        spec = _spec(
            benchmarks=["astar", "bzip2"], schemes=["ABS"], seeds=[1],
        )
        return run_campaign(
            tmp_path, spec=spec, run_fn=_FailingRunFn("astar")
        )

    def test_campaign_completes_past_a_failed_point(self, tmp_path):
        report = self._run(tmp_path)
        assert report["complete"]
        by_bench = {p["benchmark"]: p for p in report["points"]}
        assert by_bench["astar"]["stopped"] == "failed"
        assert by_bench["astar"]["metrics"] is None
        assert by_bench["bzip2"]["metrics"] is not None

    def test_failure_event_carries_the_bundle_path(self, tmp_path):
        self._run(tmp_path)
        state = Journal(tmp_path).replay()
        completion = state.completed["astar/ABS/0.97"]
        assert completion["failure"]["kind"] == "divergence"
        assert completion["failure"]["bundle"] == "/tmp/fake-bundle.json"

    def test_failed_cell_renders_as_failed(self, tmp_path):
        from repro.campaign.report import render_markdown

        report = self._run(tmp_path)
        markdown = render_markdown(report)
        assert "FAILED" in markdown

    def test_pooled_aggregates_skip_failed_points(self, tmp_path):
        report = self._run(tmp_path)
        # only bzip2 contributes to the ABS pool; no crash on the
        # metrics-less astar entry
        assert "ABS" in report["by_scheme"]

    def test_failed_point_is_not_rerun_on_resume(self, tmp_path):
        self._run(tmp_path)
        untouched = _CountingRunFn()
        report = run_campaign(tmp_path, resume=True, run_fn=untouched)
        assert untouched.calls == 0
        assert report["complete"]


class TestBoundedRetry:
    def test_retries_recover_from_transient_failures(self, tmp_path):
        flaky = _FlakyRunFn(failures=2)

        def run_fn(specs):
            last = None
            for _ in range(3):
                try:
                    return flaky(specs)
                except Exception as exc:  # noqa: BLE001
                    last = exc
            raise CampaignError(str(last))

        spec = _spec(schemes=["EP"])
        report = run_campaign(tmp_path, spec=spec, run_fn=run_fn)
        assert report["complete"]
        assert flaky.calls == 3

    def test_make_run_fn_bounds_retries(self, monkeypatch):
        attempts = []

        def boom(specs, jobs=1, cache=False, batch_lanes=None):
            attempts.append(1)
            raise OSError("worker crashed")

        monkeypatch.setattr("repro.campaign.executor.run_many", boom)
        run_fn = make_run_fn(jobs=1, cache=False, retries=2)
        with pytest.raises(CampaignError, match="3 attempts"):
            run_fn([object()])
        assert len(attempts) == 3

    def test_make_run_fn_executes_real_specs(self, tmp_path):
        spec = _spec(schemes=["EP"], seeds=[1])
        point = spec.points()[0]
        run_fn = make_run_fn(jobs=1, cache=True, cache_dir=tmp_path)
        results = run_fn(list(spec.pair_specs(point, 0)))
        assert results[0].stats.committed >= _FAST["n_instructions"]
        # second call served from the shared cache (same results)
        again = run_fn(list(spec.pair_specs(point, 0)))
        assert again[0].stats.as_dict() == results[0].stats.as_dict()
