"""PointScheduler: batching, stopping parity, exactly-once accounting."""

from repro.campaign.plan import CampaignSpec
from repro.campaign.scheduler import PointScheduler, failure_record


def _spec(min_seeds=2, max_seeds=6, batch=2, targets=None):
    return CampaignSpec(
        name="s", benchmarks=["astar"], schemes=["EP"],
        n_instructions=500, warmup=250, min_seeds=min_seeds,
        max_seeds=max_seeds, batch_size=batch, targets=targets,
    )


def _values(index, spread=0.0):
    return (
        {"perf_overhead": 0.1 + spread * index, "ed_overhead": 0.2,
         "ipc": 1.0, "fault_rate": 0.01, "replay_rate": 0.0},
        {"faults": 1, "replays": 0, "committed": 500},
    )


def _scheduler(**kwargs):
    spec = _spec(**kwargs)
    return PointScheduler(spec, spec.points()[0])


class TestBatching:
    def test_first_batch_starts_at_zero(self):
        scheduler = _scheduler()
        assert list(scheduler.next_batch()) == [0, 1]
        assert scheduler.pending() == [0, 1]

    def test_batch_reissued_until_complete(self):
        scheduler = _scheduler()
        scheduler.next_batch()
        values, counts = _values(0)
        assert scheduler.record(0, values, counts)
        # still the same in-flight batch, index 1 pending
        assert list(scheduler.next_batch()) == [0, 1]
        assert scheduler.pending() == [1]

    def test_accumulator_fed_only_at_batch_close(self):
        scheduler = _scheduler()
        scheduler.next_batch()
        scheduler.record(1, *_values(1))
        assert scheduler.acc.n == 0  # buffered, not pushed
        scheduler.record(0, *_values(0))
        assert scheduler.acc.n == 2  # whole batch pushed, in index order

    def test_final_batch_clipped_to_max_seeds(self):
        scheduler = _scheduler(min_seeds=3, max_seeds=3, batch=2,
                               targets={"perf_overhead": 1e-9})
        for i in scheduler.next_batch():
            scheduler.record(i, *_values(i, spread=0.5))
        assert list(scheduler.next_batch()) == [2]

    def test_stops_at_max_seeds(self):
        scheduler = _scheduler(min_seeds=2, max_seeds=4, batch=2,
                               targets={"perf_overhead": 1e-12})
        while True:
            batch = scheduler.next_batch()
            if batch is None:
                break
            for i in batch:
                scheduler.record(i, *_values(i, spread=0.3))
        assert scheduler.stopped == "max_seeds"
        assert scheduler.acc.n == 4

    def test_stops_on_ci_at_batch_boundary(self):
        # identical draws -> zero variance -> converged after min_seeds
        scheduler = _scheduler(min_seeds=2, max_seeds=10, batch=2)
        for i in scheduler.next_batch():
            scheduler.record(i, *_values(i))
        assert scheduler.next_batch() is None
        assert scheduler.stopped == "ci"
        assert scheduler.done


class TestExactlyOnce:
    def test_duplicate_index_rejected(self):
        scheduler = _scheduler()
        scheduler.next_batch()
        assert scheduler.record(0, *_values(0))
        assert not scheduler.record(0, *_values(0))

    def test_index_outside_batch_rejected(self):
        scheduler = _scheduler()
        scheduler.next_batch()
        assert not scheduler.record(5, *_values(5))

    def test_replayed_index_from_closed_batch_rejected(self):
        """A revoked lease's late duplicate of a pushed draw is dropped."""
        scheduler = _scheduler(min_seeds=4, max_seeds=4, batch=2,
                               targets={"perf_overhead": 1e-12})
        for i in scheduler.next_batch():
            scheduler.record(i, *_values(i, spread=0.2))
        scheduler.next_batch()  # opens [2, 3]
        assert not scheduler.record(0, *_values(0, spread=0.2))
        assert scheduler.acc.n == 2

    def test_record_after_stop_rejected(self):
        scheduler = _scheduler()
        for i in scheduler.next_batch():
            scheduler.record(i, *_values(i))
        assert scheduler.next_batch() is None
        assert not scheduler.record(2, *_values(2))


class TestFailure:
    def test_fail_keeps_contiguous_prefix(self):
        """Draws before the failing index stay, like the serial executor."""
        scheduler = _scheduler(min_seeds=4, max_seeds=4, batch=4)
        scheduler.next_batch()
        scheduler.record(0, *_values(0))
        scheduler.record(1, *_values(1))
        scheduler.record(3, *_values(3))  # index 2 failed; 3 buffered
        scheduler.fail({"kind": "divergence", "spec": "...", "bundle": "b"})
        assert scheduler.stopped == "failed"
        assert scheduler.acc.n == 2  # 0 and 1 pushed; 3 dropped (gap at 2)

    def test_completion_event_carries_failure(self):
        scheduler = _scheduler()
        failure = {"kind": "hang", "spec": "...", "bundle": "x.json"}
        scheduler.fail(failure)
        event = scheduler.completion_event()
        assert event["event"] == "point"
        assert event["stopped"] == "failed"
        assert event["failure"] == failure
        assert event["summary"] is None

    def test_failure_record_shape(self):
        class Boom:
            kind = "divergence"
            spec = "RunSpec(...)"
            bundle_path = "/tmp/b.json"

        record = failure_record(Boom())
        assert set(record) == {"kind", "spec", "bundle"}
        assert record["kind"] == "divergence"
        assert record["bundle"] == "/tmp/b.json"


class TestCompletionEvent:
    def test_matches_executor_point_event_shape(self):
        scheduler = _scheduler()
        for i in scheduler.next_batch():
            scheduler.record(i, *_values(i))
        scheduler.next_batch()
        event = scheduler.completion_event()
        assert set(event) == {"event", "point", "n", "stopped", "summary"}
        assert event["n"] == 2
        assert event["stopped"] == "ci"
