"""SimPoint phase selection: BBVs, k-means, representative picking."""

import numpy as np
import pytest

from repro.workloads.generator import build_program
from repro.workloads.profiles import get_profile
from repro.workloads.simpoint import (
    BBVCollector,
    choose_simpoints,
    kmeans,
    random_projection,
)


@pytest.fixture(scope="module")
def bbvs():
    program = build_program(get_profile("gcc"), seed=1)
    return BBVCollector(program, interval=500, seed=2).collect(20_000)


def test_bbv_shape_and_normalization(bbvs):
    assert bbvs.shape[0] == 40  # 20k instructions / 500 interval
    assert np.allclose(bbvs.sum(axis=1), 1.0)
    assert (bbvs >= 0).all()


def test_bbv_requires_full_interval():
    program = build_program(get_profile("gcc"), seed=1)
    with pytest.raises(ValueError):
        BBVCollector(program, interval=1000).collect(10)


def test_random_projection_reduces_dimensions(bbvs):
    projected = random_projection(bbvs, n_dims=15, seed=0)
    assert projected.shape == (len(bbvs), 15)


def test_random_projection_keeps_small_inputs():
    small = np.ones((4, 8))
    assert random_projection(small, n_dims=15).shape == (4, 8)


class TestKMeans:
    def test_separates_known_blobs(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.05, size=(30, 3))
        b = rng.normal(5.0, 0.05, size=(30, 3))
        points = np.vstack([a, b])
        labels, centroids, inertia = kmeans(points, 2, seed=1)
        assert len(set(labels[:30])) == 1
        assert len(set(labels[30:])) == 1
        assert labels[0] != labels[30]
        assert inertia < 10.0

    def test_k_one_single_cluster(self):
        points = np.random.default_rng(1).normal(size=(10, 2))
        labels, centroids, _ = kmeans(points, 1, seed=0)
        assert set(labels) == {0}
        assert np.allclose(centroids[0], points.mean(axis=0))

    def test_rejects_bad_k(self):
        points = np.zeros((3, 2))
        with pytest.raises(ValueError):
            kmeans(points, 0)
        with pytest.raises(ValueError):
            kmeans(points, 4)


class TestChooseSimpoints:
    def test_weights_sum_to_one(self, bbvs):
        simpoints = choose_simpoints(bbvs, max_k=4, seed=0)
        assert sum(w for _, w in simpoints) == pytest.approx(1.0)

    def test_representatives_are_valid_intervals(self, bbvs):
        simpoints = choose_simpoints(bbvs, max_k=4, seed=0)
        for index, weight in simpoints:
            assert 0 <= index < len(bbvs)
            assert 0 < weight <= 1.0

    def test_homogeneous_intervals_collapse_to_one_phase(self):
        # identical BBVs with tiny noise: the complexity penalty must stop
        # SimPoint from fragmenting a single phase into many clusters
        rng = np.random.default_rng(5)
        base = rng.random(20)
        base /= base.sum()
        bbvs = base + rng.normal(0, 1e-4, size=(30, 20))
        simpoints = choose_simpoints(bbvs, max_k=6, seed=0)
        assert len(simpoints) == 1

    def test_two_phase_program_yields_two_clusters(self):
        rng = np.random.default_rng(6)
        phase_a = np.zeros(10)
        phase_a[:5] = 0.2
        phase_b = np.zeros(10)
        phase_b[5:] = 0.2
        bbvs = np.vstack(
            [phase_a + rng.normal(0, 1e-3, (15, 10)),
             phase_b + rng.normal(0, 1e-3, (15, 10))]
        )
        simpoints = choose_simpoints(bbvs, max_k=5, seed=0)
        assert len(simpoints) == 2
        assert sorted(w for _, w in simpoints) == pytest.approx([0.5, 0.5])
