"""Synthetic program generation."""

import pytest

from repro.isa.opcodes import OpClass
from repro.workloads.generator import (
    _L1_REGION,
    _MEM_REGION,
    build_program,
    estimate_pc_freq,
)
from repro.workloads.profiles import get_profile


@pytest.fixture(scope="module")
def program():
    return build_program(get_profile("bzip2"), seed=3)


def test_block_count_matches_profile(program):
    assert len(program.blocks) == get_profile("bzip2").n_blocks


def test_every_block_ends_with_branch(program):
    for block in program.blocks:
        assert block.insts[-1].op is OpClass.BRANCH
        for inst in block.insts[:-1]:
            assert inst.op is not OpClass.BRANCH


def test_pcs_unique_and_word_aligned(program):
    pcs = [si.pc for si in program.static_insts]
    assert len(pcs) == len(set(pcs))
    assert all(pc % 4 == 0 for pc in pcs)


def test_deterministic_given_seed():
    a = build_program(get_profile("gcc"), seed=5)
    b = build_program(get_profile("gcc"), seed=5)
    assert [si.pc for si in a.static_insts] == [si.pc for si in b.static_insts]
    assert [si.op for si in a.static_insts] == [si.op for si in b.static_insts]


def test_different_seeds_differ():
    a = build_program(get_profile("gcc"), seed=5)
    b = build_program(get_profile("gcc"), seed=6)
    assert (
        [si.op for si in a.static_insts] != [si.op for si in b.static_insts]
    )


def test_mem_instructions_have_regions(program):
    mem_insts = [si for si in program.static_insts if si.is_mem]
    assert mem_insts
    for si in mem_insts:
        assert si.mem_region in (_L1_REGION, 16 * 1024, _MEM_REGION)
        assert si.mem_stride > 0


def test_mix_roughly_matches_profile(program):
    profile = get_profile("bzip2")
    non_branch = [si for si in program.static_insts if not si.is_branch]
    loads = sum(1 for si in non_branch if si.op is OpClass.LOAD)
    expected = profile.normalized_mix["load"]
    assert loads / len(non_branch) == pytest.approx(expected, abs=0.08)


def test_loop_structure_creates_back_edges(program):
    back_edges = sum(
        1
        for block in program.blocks
        for succ, _ in block.successors
        if succ <= block.index
    )
    assert back_edges >= len(program.blocks) // 10


def test_stores_have_no_destination(program):
    for si in program.static_insts:
        if si.op is OpClass.STORE:
            assert si.dest is None


def test_sources_reference_valid_registers(program):
    for si in program.static_insts:
        for src in si.srcs:
            assert 1 <= src < 32


def test_estimate_pc_freq_is_distribution(program):
    freq = estimate_pc_freq(program, seed=1, n_instructions=5000)
    assert sum(freq.values()) == pytest.approx(1.0)
    assert all(v > 0 for v in freq.values())
    assert set(freq) <= {si.pc for si in program.static_insts}


def test_loop_pcs_recur(program):
    # the hottest PC must account for far more than uniform share (loops)
    freq = estimate_pc_freq(program, seed=1, n_instructions=10000)
    assert max(freq.values()) > 3.0 / program.n_static
