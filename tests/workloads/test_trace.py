"""Dynamic trace generation."""

import itertools

import pytest

from repro.workloads.generator import build_program
from repro.workloads.profiles import get_profile
from repro.workloads.trace import TraceGenerator

from tests.conftest import make_linear_program


@pytest.fixture
def program():
    return build_program(get_profile("astar"), seed=2)


def test_sequence_numbers_monotonic(program):
    trace = TraceGenerator(program, seed=0)
    seqs = [next(trace).seq for _ in range(200)]
    assert seqs == list(range(200))


def test_deterministic_given_seed(program):
    a = TraceGenerator(program, seed=4)
    b = TraceGenerator(program, seed=4)
    for _ in range(300):
        x, y = next(a), next(b)
        assert (x.pc, x.taken, x.mem_addr) == (y.pc, y.taken, y.mem_addr)


def test_pcs_follow_block_structure(program):
    trace = TraceGenerator(program, seed=0)
    insts = [next(trace) for _ in range(500)]
    by_pc = {si.pc: si for si in program.static_insts}
    for prev, cur in zip(insts, insts[1:]):
        if not prev.is_branch:
            # straight-line: the next PC is sequential
            assert cur.pc == prev.pc + 4
        assert cur.pc in by_pc


def test_taken_flag_consistent_with_fallthrough(program):
    trace = TraceGenerator(program, seed=0)
    insts = [next(trace) for _ in range(500)]
    for prev, cur in zip(insts, insts[1:]):
        if prev.is_branch:
            assert prev.taken == (cur.pc != prev.pc + 4)


def test_mem_addresses_advance(program):
    trace = TraceGenerator(program, seed=0)
    addrs = {}
    for inst in itertools.islice(trace, 2000):
        if inst.is_mem:
            addrs.setdefault(inst.pc, []).append(inst.mem_addr)
    repeated = [a for a in addrs.values() if len(a) >= 3]
    assert repeated
    assert any(len(set(a)) > 1 for a in repeated)  # strided streams move


def test_finite_program_raises_stop_iteration():
    program = make_linear_program(n_blocks=2, block_len=3, loop=False)
    trace = TraceGenerator(program, seed=0)
    emitted = list(trace)
    assert len(emitted) == 6
    with pytest.raises(StopIteration):
        next(trace)


def test_emitted_counter(program):
    trace = TraceGenerator(program, seed=0)
    for _ in range(42):
        next(trace)
    assert trace.emitted == 42
