"""Synthetic microbenchmark kernels."""

import pytest

from repro.core.schemes import SchemeKind
from repro.harness.runner import RunSpec, run_one
from repro.workloads.microbench import MICROBENCH_PROFILES, microbench_names
from repro.workloads.profiles import get_profile

_FAST = dict(n_instructions=1800, warmup=900)


def test_registry_names():
    assert set(microbench_names()) == {
        "pointer_chase", "streaming", "dense_alu", "branchy",
        "reduction", "fanout_kernel",
    }


def test_get_profile_resolves_kernels():
    assert get_profile("dense_alu") is MICROBENCH_PROFILES["dense_alu"]


def test_get_profile_error_lists_kernels():
    with pytest.raises(KeyError, match="pointer_chase"):
        get_profile("nonesuch")


@pytest.mark.parametrize("name", sorted(MICROBENCH_PROFILES))
def test_every_kernel_runs(name):
    result = run_one(RunSpec(name, SchemeKind.FAULT_FREE, 1.10, **_FAST))
    assert result.stats.committed >= _FAST["n_instructions"]
    assert result.ipc > 0


def test_kernel_behavioural_ordering():
    def ipc(name):
        return run_one(
            RunSpec(name, SchemeKind.FAULT_FREE, 1.10, **_FAST)
        ).ipc

    # memory-bound kernels are far slower than the compute-bound ones
    assert ipc("dense_alu") > 3 * ipc("pointer_chase")
    assert ipc("dense_alu") > 3 * ipc("streaming")


def test_branchy_kernel_mispredicts_heavily():
    result = run_one(RunSpec("branchy", SchemeKind.FAULT_FREE, 1.10, **_FAST))
    assert result.stats.mispredict_rate > 0.15


def test_streaming_kernel_misses_to_memory():
    result = run_one(
        RunSpec("streaming", SchemeKind.FAULT_FREE, 1.10, **_FAST)
    )
    assert result.cache_stats["mem_accesses"] > 100


def test_kernels_work_with_fault_tolerance():
    base = run_one(RunSpec("dense_alu", SchemeKind.FAULT_FREE, 0.97, **_FAST))
    abs_run = run_one(RunSpec("dense_alu", SchemeKind.ABS, 0.97, **_FAST))
    razor = run_one(RunSpec("dense_alu", SchemeKind.RAZOR, 0.97, **_FAST))
    assert abs_run.fault_rate > 0.01
    assert abs_run.perf_overhead(base) < razor.perf_overhead(base)
