"""Benchmark profile registry and validation."""

import pytest

from repro.workloads.profiles import (
    BenchmarkProfile,
    SPEC2006_PROFILES,
    get_profile,
    profile_names,
)

PAPER_BENCHMARKS = [
    "astar", "bzip2", "gcc", "gobmk", "libquantum", "mcf",
    "perlbench", "povray", "sjeng", "sphinx3", "tonto", "xalancbmk",
]


def test_all_twelve_paper_benchmarks_present():
    assert sorted(SPEC2006_PROFILES) == sorted(PAPER_BENCHMARKS)


def test_presentation_order_matches_paper():
    assert profile_names() == PAPER_BENCHMARKS


def test_unknown_suite_rejected():
    with pytest.raises(KeyError):
        profile_names("spec2017")


def test_get_profile_error_lists_known_names():
    with pytest.raises(KeyError, match="astar"):
        get_profile("nope")


def test_normalized_mix_sums_to_one():
    for profile in SPEC2006_PROFILES.values():
        assert sum(profile.normalized_mix.values()) == pytest.approx(1.0)


def test_working_sets_are_distributions():
    for profile in SPEC2006_PROFILES.values():
        assert profile.l1_ws + profile.l2_ws + profile.mem_ws == pytest.approx(1.0)


def test_fault_rate_targets_follow_table1_ordering():
    for profile in SPEC2006_PROFILES.values():
        assert 0 < profile.fr_low < profile.fr_high < 0.2


def test_high_ilp_benchmarks_have_more_immediates():
    # the ILP lever must separate the extremes of Table 1
    assert (
        get_profile("sjeng").imm_frac > get_profile("libquantum").imm_frac
    )
    assert get_profile("povray").imm_frac > get_profile("mcf").imm_frac


def test_memory_bound_benchmarks_have_bigger_working_sets():
    assert get_profile("mcf").l1_ws < get_profile("gobmk").l1_ws
    assert get_profile("xalancbmk").l2_ws > get_profile("povray").l2_ws


def test_libquantum_has_high_fanout_for_cds():
    assert get_profile("libquantum").fanout_frac >= 0.4


def test_validation_rejects_bad_working_set():
    with pytest.raises(ValueError, match="working-set"):
        BenchmarkProfile("x", l1_ws=0.5, l2_ws=0.1, mem_ws=0.1)


def test_validation_rejects_bad_fault_targets():
    with pytest.raises(ValueError, match="fault-rate"):
        BenchmarkProfile("x", fr_low=0.1, fr_high=0.05)


def test_validation_rejects_empty_mix():
    with pytest.raises(ValueError, match="mix"):
        BenchmarkProfile("x", mix={"ialu": 0.0})


def test_profiles_are_frozen():
    with pytest.raises(AttributeError):
        get_profile("astar").imm_frac = 0.9
