"""Operand streams for the Figure 7 commonality study."""

import pytest

from repro.circuits.builders import build_agen
from repro.circuits.sensitization import (
    toggle_sets_per_pc,
    weighted_commonality,
)
from repro.workloads.operand_streams import (
    FIG7_COMPONENTS,
    OperandProfile,
    SPEC2000INT_PROFILES,
    StreamBuilder,
    spec2000_names,
)


def test_paper_benchmarks_present():
    assert spec2000_names() == ["bzip", "gap", "gzip", "mcf", "parser",
                                "vortex"]


def test_vortex_has_highest_locality():
    vortex = SPEC2000INT_PROFILES["vortex"].locality
    assert all(
        vortex >= p.locality for p in SPEC2000INT_PROFILES.values()
    )


def test_locality_validation():
    with pytest.raises(ValueError):
        OperandProfile("x", locality=1.5)


def test_stream_shapes():
    builder = StreamBuilder(SPEC2000INT_PROFILES["bzip"], seed=0)
    widths = {
        "ALU": 32 + 32 + 3,
        "AGen": 64,
        "IssueQSelect": 32,
        "ForwardCheck": 4 * 7 + 4 + 8 * 7,
    }
    for component in FIG7_COMPONENTS:
        stream = builder.stream_for(component)
        profile = builder.profile
        assert len(stream) == profile.n_pcs * profile.instances_per_pc
        for pc, prev, cur in stream:
            assert len(prev) == widths[component]
            assert len(cur) == widths[component]
            assert all(bit in (0, 1) for bit in prev + cur)


def test_unknown_component_rejected():
    builder = StreamBuilder(SPEC2000INT_PROFILES["bzip"])
    with pytest.raises(KeyError):
        builder.stream_for("FPU")


def test_opcode_field_is_static_per_pc():
    builder = StreamBuilder(SPEC2000INT_PROFILES["mcf"], seed=1)
    by_pc = {}
    for pc, _, cur in builder.stream_for("ALU"):
        op_bits = tuple(cur[64:])
        by_pc.setdefault(pc, set()).add(op_bits)
    assert all(len(ops) == 1 for ops in by_pc.values())


def test_deterministic_given_seed():
    a = StreamBuilder(SPEC2000INT_PROFILES["gap"], seed=9).alu_stream()
    b = StreamBuilder(SPEC2000INT_PROFILES["gap"], seed=9).alu_stream()
    assert a == b


def test_higher_locality_gives_higher_commonality():
    netlist, _ = build_agen()
    def measure(locality):
        profile = OperandProfile("x", locality=locality, n_pcs=8,
                                 instances_per_pc=10)
        stream = StreamBuilder(profile, seed=3).agen_stream()
        return weighted_commonality(toggle_sets_per_pc(netlist, stream))

    assert measure(0.95) > measure(0.55)


def test_instances_interleaved_across_pcs():
    builder = StreamBuilder(SPEC2000INT_PROFILES["bzip"], seed=0)
    stream = builder.select_stream()
    n_pcs = builder.profile.n_pcs
    first_round = [pc for pc, _, _ in stream[:n_pcs]]
    assert len(set(first_round)) == n_pcs  # round-robin, not blocked
