"""External trace file import/export."""

import itertools

import pytest

from repro.core.schemes import SchemeKind, make_scheme
from repro.isa.opcodes import OpClass
from repro.mem.hierarchy import MemoryHierarchy
from repro.uarch.config import CoreConfig
from repro.uarch.pipeline import OoOCore
from repro.workloads.generator import build_program
from repro.workloads.profiles import get_profile
from repro.workloads.trace import TraceGenerator
from repro.workloads.tracefile import (
    FileTrace,
    TraceFormatError,
    load_trace,
    save_trace,
)

_SAMPLE = [
    '{"pc": 4096, "op": "IALU", "dest": 1, "srcs": []}',
    '{"pc": 4100, "op": "LOAD", "dest": 2, "srcs": [1], "addr": 256}',
    '{"pc": 4104, "op": "IALU", "dest": 3, "srcs": [2]}',
    '{"pc": 4108, "op": "BRANCH", "srcs": [3], "taken": true}',
    '{"pc": 4096, "op": "IALU", "dest": 1, "srcs": []}',
    '{"pc": 4100, "op": "LOAD", "dest": 2, "srcs": [1], "addr": 264}',
]


def test_parse_records():
    trace = FileTrace(_SAMPLE)
    assert len(trace) == 6
    insts = list(trace)
    assert insts[0].op is OpClass.IALU
    assert insts[1].mem_addr == 256
    assert insts[5].mem_addr == 264  # per-record addresses
    assert insts[3].taken is True
    assert [i.seq for i in insts] == list(range(6))


def test_statics_deduplicated():
    trace = FileTrace(_SAMPLE)
    assert len(trace.statics) == 4
    assert [s.pc for s in trace.statics] == [4096, 4100, 4104, 4108]


def test_comments_and_blank_lines_skipped():
    trace = FileTrace(["# header", "", _SAMPLE[0]])
    assert len(trace) == 1


def test_malformed_json_rejected():
    with pytest.raises(TraceFormatError, match="line 1"):
        FileTrace(["{nope"])


def test_missing_fields_rejected():
    with pytest.raises(TraceFormatError, match="'pc' and 'op'"):
        FileTrace(['{"op": "IALU"}'])


def test_unknown_op_rejected():
    with pytest.raises(TraceFormatError, match="unknown op"):
        FileTrace(['{"pc": 0, "op": "VLIW"}'])


def test_inconsistent_static_rejected():
    with pytest.raises(TraceFormatError, match="disagrees"):
        FileTrace([
            '{"pc": 64, "op": "IALU", "dest": 1, "srcs": []}',
            '{"pc": 64, "op": "IALU", "dest": 2, "srcs": []}',
        ])


def test_rewind():
    trace = FileTrace(_SAMPLE)
    first = [i.pc for i in trace]
    trace.rewind()
    assert [i.pc for i in trace] == first


def test_roundtrip_through_file(tmp_path):
    program = build_program(get_profile("astar"), seed=3)
    insts = list(itertools.islice(TraceGenerator(program, seed=1), 300))
    path = save_trace(insts, tmp_path / "trace.jsonl")
    loaded = load_trace(path)
    assert len(loaded) == 300
    for original, parsed in zip(insts, loaded):
        assert parsed.pc == original.pc
        assert parsed.op is original.op
        assert parsed.mem_addr == original.mem_addr
        assert parsed.taken == original.taken


def test_pipeline_runs_on_file_trace(tmp_path):
    program = build_program(get_profile("bzip2"), seed=2)
    insts = list(itertools.islice(TraceGenerator(program, seed=1), 2000))
    path = save_trace(insts, tmp_path / "t.jsonl")
    core = OoOCore(
        CoreConfig.core1(),
        load_trace(path),
        MemoryHierarchy(),
        make_scheme(SchemeKind.FAULT_FREE),
    )
    stats = core.run(10_000)  # drains at trace end
    assert stats.committed == 2000
    assert 0 < stats.ipc <= 4
