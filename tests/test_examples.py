"""The example scripts must at least compile and expose a main().

Full executions are exercised manually / in the benchmark logs (they run
tens of seconds each); here we guarantee they stay importable and that
the fastest one runs end to end.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def _load(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart", "voltage_sweep", "illustrative_example",
        "sensitization_study", "simpoint_phases", "overclocking",
        "predictor_comparison",
    } <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_compiles_and_has_main(path):
    module = _load(path)
    assert callable(getattr(module, "main", None))
    assert module.__doc__  # every example explains itself


def test_illustrative_example_runs(capsys):
    module = _load(
        pathlib.Path(__file__).parent.parent
        / "examples" / "illustrative_example.py"
    )
    old_argv = sys.argv
    sys.argv = ["illustrative_example.py"]
    try:
        module.main()
    finally:
        sys.argv = old_argv
    out = capsys.readouterr().out
    assert "fault-free schedule" in out
    assert "No replay occurred" in out
